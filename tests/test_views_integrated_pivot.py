"""Tests for the integrated pivot view (basic-view swimlanes, the paper's announced enhancement)."""

from __future__ import annotations

import pytest

from repro.aggregation.parameters import AggregationParameters
from repro.flexoffer.model import FlexOfferState
from repro.olap.cube import MemberFilter
from repro.render.scene import Line, Rect
from repro.views.integrated_pivot import IntegratedPivotOptions, IntegratedPivotView


@pytest.fixture(scope="module")
def view(scenario):
    return IntegratedPivotView(scenario.flex_offers, scenario.grid)


class TestIntegratedPivotView:
    def test_members_match_cube(self, view, scenario):
        assert set(view.members()) == {offer.prosumer_type for offer in scenario.flex_offers}

    def test_lane_offers_cover_every_member(self, view):
        lanes = view.lane_offers()
        assert set(lanes) == set(view.members())
        assert all(lanes[member] for member in lanes)

    def test_aggregation_reduces_lane_objects(self, scenario):
        raw = IntegratedPivotView(
            scenario.flex_offers,
            scenario.grid,
            options=IntegratedPivotOptions(aggregate_lanes=False),
        )
        aggregated = IntegratedPivotView(
            scenario.flex_offers,
            scenario.grid,
            options=IntegratedPivotOptions(aggregate_lanes=True),
        )
        raw_total = sum(len(offers) for offers in raw.lane_offers().values())
        aggregated_total = sum(len(offers) for offers in aggregated.lane_offers().values())
        assert aggregated_total <= raw_total
        assert raw_total == len(scenario.flex_offers)

    def test_aggregate_ids_unique_across_lanes(self, view):
        identifiers = [offer.id for offers in view.lane_offers().values() for offer in offers]
        assert len(identifiers) == len(set(identifiers))

    def test_svg_has_swimlanes_with_offer_boxes(self, view):
        svg = view.to_svg()
        assert "swimlane" in svg
        assert "profile-box" in svg
        assert "time-flexibility" in svg

    def test_scheduled_offers_show_start_lines(self, view, scenario):
        has_scheduled = any(offer.schedule is not None for offer in scenario.flex_offers)
        lines = [
            node
            for node in view.scene().walk()
            if isinstance(node, Line) and node.css_class == "scheduled-start"
        ]
        assert bool(lines) == has_scheduled

    def test_boxes_stay_inside_their_swimlane(self, view):
        scene = view.scene()
        options = view.options
        members = view.members()
        lane_bounds = {
            f"member:{member}": (
                options.margin_top + index * options.lane_height,
                options.margin_top + (index + 1) * options.lane_height,
            )
            for index, member in enumerate(members)
        }
        for node in scene.walk():
            if isinstance(node, Rect) and "profile-box" in node.css_class:
                # Every profile box must fall into exactly one lane's vertical band.
                assert any(top - 1 <= node.y <= bottom + 1 for top, bottom in lane_bounds.values())

    def test_filters_restrict_content(self, scenario):
        assigned_only = IntegratedPivotView(
            scenario.flex_offers,
            scenario.grid,
            options=IntegratedPivotOptions(
                aggregate_lanes=False,
                filters=(MemberFilter("State", "state", ("assigned",)),),
            ),
        )
        total = sum(len(offers) for offers in assigned_only.lane_offers().values())
        expected = sum(1 for offer in scenario.flex_offers if offer.state is FlexOfferState.ASSIGNED)
        assert total == expected

    def test_scene_height_grows_with_members(self, scenario):
        by_city = IntegratedPivotView(
            scenario.flex_offers,
            scenario.grid,
            options=IntegratedPivotOptions(row_dimension="Geography", row_level="city", lane_height=100),
        )
        assert by_city.scene().height >= len(by_city.members()) * 100

    def test_custom_aggregation_parameters(self, scenario):
        coarse = IntegratedPivotView(
            scenario.flex_offers,
            scenario.grid,
            options=IntegratedPivotOptions(
                aggregation=AggregationParameters(est_tolerance_slots=32, time_flexibility_tolerance_slots=32)
            ),
        )
        fine = IntegratedPivotView(
            scenario.flex_offers,
            scenario.grid,
            options=IntegratedPivotOptions(
                aggregation=AggregationParameters(est_tolerance_slots=1, time_flexibility_tolerance_slots=1)
            ),
        )
        coarse_total = sum(len(offers) for offers in coarse.lane_offers().values())
        fine_total = sum(len(offers) for offers in fine.lane_offers().values())
        assert coarse_total <= fine_total

    def test_empty_offer_list_renders(self, grid):
        view = IntegratedPivotView([], grid)
        assert "<svg" in view.to_svg()

"""Tests for the time grid."""

from __future__ import annotations

from datetime import timedelta

import pytest

from repro.errors import TimeGridError
from repro.timeseries.grid import DEFAULT_ORIGIN, TimeGrid, hours_between


class TestTimeGridConstruction:
    def test_default_grid_uses_15_minutes(self, grid):
        assert grid.resolution == timedelta(minutes=15)

    def test_default_origin(self, grid):
        assert grid.origin == DEFAULT_ORIGIN

    def test_rejects_zero_resolution(self):
        with pytest.raises(TimeGridError):
            TimeGrid(resolution=timedelta(0))

    def test_rejects_negative_resolution(self):
        with pytest.raises(TimeGridError):
            TimeGrid(resolution=timedelta(minutes=-5))


class TestSlotConversion:
    def test_origin_is_slot_zero(self, grid):
        assert grid.to_slot(grid.origin) == 0

    def test_slot_roundtrip(self, grid):
        for slot in (0, 1, 10, 96, 1000):
            assert grid.to_slot(grid.to_datetime(slot)) == slot

    def test_instant_inside_slot_floors(self, grid):
        instant = grid.origin + timedelta(minutes=16)
        assert grid.to_slot(instant) == 1

    def test_instant_before_origin_is_negative(self, grid):
        assert grid.to_slot(grid.origin - timedelta(minutes=15)) == -1

    def test_slot_bounds_span_one_resolution(self, grid):
        start, end = grid.slot_bounds(5)
        assert end - start == grid.resolution

    def test_slot_bounds_start_matches_to_datetime(self, grid):
        start, _ = grid.slot_bounds(7)
        assert start == grid.to_datetime(7)


class TestSpanSlots:
    def test_exact_slot_span(self, grid):
        start = grid.to_datetime(4)
        end = grid.to_datetime(8)
        assert list(grid.span_slots(start, end)) == [4, 5, 6, 7]

    def test_partial_end_includes_last_slot(self, grid):
        start = grid.to_datetime(4)
        end = grid.to_datetime(8) + timedelta(minutes=1)
        assert list(grid.span_slots(start, end))[-1] == 8

    def test_empty_span(self, grid):
        start = grid.to_datetime(4)
        assert list(grid.span_slots(start, start)) == []

    def test_reversed_span_raises(self, grid):
        with pytest.raises(TimeGridError):
            grid.span_slots(grid.to_datetime(5), grid.to_datetime(4))


class TestUnits:
    def test_hours_per_slot(self, grid):
        assert grid.hours_per_slot == pytest.approx(0.25)

    def test_slots_per_day(self, grid):
        assert grid.slots_per_day() == 96

    def test_slots_per_day_hourly(self, hour_grid):
        assert hour_grid.slots_per_day() == 24

    def test_slots_per_day_rejects_uneven_resolution(self):
        grid = TimeGrid(resolution=timedelta(minutes=7))
        with pytest.raises(TimeGridError):
            grid.slots_per_day()

    def test_hours_between(self, grid):
        assert hours_between(grid, 0, 8) == pytest.approx(2.0)

    def test_hours_between_rejects_reversed(self, grid):
        with pytest.raises(TimeGridError):
            hours_between(grid, 8, 0)


class TestCompatibility:
    def test_same_grid_is_compatible(self, grid):
        assert grid.compatible_with(TimeGrid())

    def test_shifted_origin_whole_slots_is_compatible(self, grid):
        other = TimeGrid(origin=grid.origin + timedelta(minutes=45))
        assert grid.compatible_with(other)
        assert grid.slot_offset(other) == 3

    def test_shifted_origin_partial_slot_is_incompatible(self, grid):
        other = TimeGrid(origin=grid.origin + timedelta(minutes=7))
        assert not grid.compatible_with(other)

    def test_different_resolution_is_incompatible(self, grid, hour_grid):
        assert not grid.compatible_with(hour_grid)

    def test_slot_offset_incompatible_raises(self, grid, hour_grid):
        with pytest.raises(TimeGridError):
            grid.slot_offset(hour_grid)

"""Tests for the forecasting models and their evaluation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ForecastError
from repro.forecasting.evaluation import backtest, compare_models
from repro.forecasting.models import (
    HoltWintersConfig,
    HoltWintersForecast,
    MovingAverageForecast,
    PersistenceForecast,
    SeasonalNaiveForecast,
)
from repro.timeseries.series import TimeSeries


@pytest.fixture
def seasonal_series(grid):
    """Four days of a noisy daily pattern at 15-minute resolution.

    Long enough that a 75% training split still contains at least two full
    seasons, which is what the Holt-Winters initialisation needs.
    """
    rng = np.random.default_rng(3)
    slots = np.arange(4 * 96)
    pattern = 10 + 5 * np.sin(2 * np.pi * (slots % 96) / 96.0)
    return TimeSeries(grid, 0, pattern + rng.normal(0, 0.2, len(slots)), name="demand", unit="kWh")


class TestPersistence:
    def test_repeats_last_value(self, grid):
        series = TimeSeries(grid, 0, [1.0, 2.0, 3.0])
        forecast = PersistenceForecast().fit(series).forecast(4)
        assert forecast.values.tolist() == [3.0] * 4

    def test_forecast_starts_after_history(self, grid):
        series = TimeSeries(grid, 5, [1.0, 2.0])
        forecast = PersistenceForecast().fit(series).forecast(2)
        assert forecast.start_slot == 7

    def test_fit_on_empty_raises(self, grid):
        with pytest.raises(ForecastError):
            PersistenceForecast().fit(TimeSeries(grid, 0, []))

    def test_forecast_before_fit_raises(self):
        with pytest.raises(ForecastError):
            PersistenceForecast().forecast(4)


class TestMovingAverage:
    def test_uses_window_mean(self, grid):
        series = TimeSeries(grid, 0, [0.0, 0.0, 4.0, 8.0])
        forecast = MovingAverageForecast(window=2).fit(series).forecast(1)
        assert forecast.values.tolist() == [6.0]

    def test_window_larger_than_history(self, grid):
        series = TimeSeries(grid, 0, [2.0, 4.0])
        forecast = MovingAverageForecast(window=10).fit(series).forecast(1)
        assert forecast.values.tolist() == [3.0]

    def test_invalid_window_rejected(self):
        with pytest.raises(ForecastError):
            MovingAverageForecast(window=0)


class TestSeasonalNaive:
    def test_repeats_last_season(self, grid):
        values = list(range(8)) + list(range(8))
        series = TimeSeries(grid, 0, values)
        forecast = SeasonalNaiveForecast(season_length=8).fit(series).forecast(8)
        assert forecast.values.tolist() == list(map(float, range(8)))

    def test_short_history_falls_back_to_persistence(self, grid):
        series = TimeSeries(grid, 0, [1.0, 5.0])
        forecast = SeasonalNaiveForecast(season_length=96).fit(series).forecast(3)
        assert forecast.values.tolist() == [5.0] * 3

    def test_invalid_season_rejected(self):
        with pytest.raises(ForecastError):
            SeasonalNaiveForecast(season_length=0)


class TestHoltWinters:
    def test_captures_seasonality_better_than_persistence(self, seasonal_series):
        horizon = 48
        hw = backtest(HoltWintersForecast(season_length=96), seasonal_series, horizon)
        naive = backtest(PersistenceForecast(), seasonal_series, horizon)
        assert hw.rmse < naive.rmse

    def test_forecast_is_nonnegative(self, seasonal_series):
        forecast = HoltWintersForecast(season_length=96).fit(seasonal_series).forecast(48)
        assert (forecast.values >= 0).all()

    def test_short_history_degrades_gracefully(self, grid):
        series = TimeSeries(grid, 0, [5.0] * 20)
        forecast = HoltWintersForecast(season_length=96).fit(series).forecast(4)
        assert forecast.values == pytest.approx([5.0] * 4)

    def test_invalid_smoothing_rejected(self):
        with pytest.raises(ForecastError):
            HoltWintersForecast(season_length=4, config=HoltWintersConfig(alpha=1.5))


class TestEvaluation:
    def test_backtest_horizon_clamped(self, seasonal_series):
        accuracy = backtest(PersistenceForecast(), seasonal_series, horizon=10_000)
        assert accuracy.horizon <= len(seasonal_series)

    def test_backtest_invalid_fraction(self, seasonal_series):
        with pytest.raises(ForecastError):
            backtest(PersistenceForecast(), seasonal_series, horizon=8, train_fraction=1.5)

    def test_compare_models_returns_one_row_each(self, seasonal_series):
        models = [PersistenceForecast(), MovingAverageForecast(8), SeasonalNaiveForecast(96)]
        rows = compare_models(models, seasonal_series, horizon=24)
        assert [row.model_name for row in rows] == ["persistence", "moving-average", "seasonal-naive"]
        assert all(row.mae >= 0 for row in rows)

    def test_seasonal_naive_beats_persistence_on_seasonal_data(self, seasonal_series):
        horizon = 48
        seasonal = backtest(SeasonalNaiveForecast(season_length=96), seasonal_series, horizon)
        naive = backtest(PersistenceForecast(), seasonal_series, horizon)
        assert seasonal.rmse < naive.rmse

    def test_perfect_forecast_on_constant_series(self, grid):
        series = TimeSeries(grid, 0, [5.0] * 64)
        accuracy = backtest(PersistenceForecast(), series, horizon=16)
        assert accuracy.mae == pytest.approx(0.0)
        assert accuracy.mape == pytest.approx(0.0)

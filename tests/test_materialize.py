"""Differential harness for materialized views (``repro.session.materialize``).

The contract under test: a registered :class:`MaterializedView` — maintained
purely from commit deltas through the hub — is equivalent to a from-scratch
``session.query(spec)`` at *every* commit point, on every live-family engine,
with the batch pipeline as the final oracle (the four-engine pattern of
``tests/test_differential_engines.py``).  Raw specs must agree on exact ids,
aggregation specs bit-for-bit on profiles (ids modulo canonical form), and
the view's ``version`` must track the read path's snapshot versions.

Also here: the regression tests for standing state across ``use_engine()``
swaps — before this fix every engine switch silently orphaned hub
subscriptions (and ``unsubscribe`` on the stale handle returned False).

Registered in the weekly ``HYPOTHESIS_PROFILE=extended`` CI run.
"""

from __future__ import annotations

from dataclasses import replace
from datetime import timedelta

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.scenarios import ScenarioConfig, generate_scenario
from repro.errors import SessionError
from repro.live.events import OfferAdded, OfferUpdated, OfferWithdrawn
from repro.live.replay import scenario_event_stream
from repro.session import FlexSession, QuerySpec
from tests.conftest import make_offer

LIVE_ENGINES = ("live", "sharded", "async")


@pytest.fixture(scope="module")
def small_scenario():
    return generate_scenario(ScenarioConfig(prosumer_count=30, seed=13))


def _mutated_events(scenario, seed: int = 5):
    stream = scenario_event_stream(
        scenario, update_fraction=0.3, withdraw_fraction=0.2, seed=seed
    )
    return list(stream.replay_order())


def _standing_specs(session: FlexSession) -> dict[str, QuerySpec]:
    return {
        "raw-region": QuerySpec.build(region="Capital"),
        "raw-prosumer": QuerySpec.build(prosumer_id=7),
        "raw-limited": QuerySpec.build(state="assigned", limit=5),
        "aggregated": QuerySpec.build(parameters=session.parameters),
        "agg-limited": QuerySpec.build(parameters=session.parameters, limit=8),
    }


def _check_view(session: FlexSession, view) -> None:
    """One differential probe: the maintained result vs a from-scratch query."""
    expect = session.query(view.spec, consistency="live")
    held = view.result
    assert expect.matches(held), (
        f"view {view.name!r} diverged from a from-scratch query at v{view.version}"
    )
    if view.spec.parameters is None:
        assert [o.id for o in held.offers] == [o.id for o in expect.offers], (
            f"view {view.name!r}: raw ids diverged"
        )
    assert held.matched_rows == expect.matched_rows
    readpath = session.engine.readpath
    assert view.version == readpath.manager.latest_version, (
        f"view {view.name!r} version {view.version} is not the published "
        f"snapshot version {readpath.manager.latest_version}"
    )
    assert held.version == view.version
    assert view.staleness == 0


# ----------------------------------------------------------------------
# The differential harness: every commit point, every live-family engine
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", LIVE_ENGINES)
def test_views_match_queries_at_every_commit_point(small_scenario, engine):
    """Mutated/withdrawn stream: maintained ≡ from-scratch after each event."""
    with FlexSession(small_scenario, engine=engine, live_preload=False) as session:
        views = [
            session.materialize(spec, name=name)
            for name, spec in _standing_specs(session).items()
        ]
        for event in _mutated_events(small_scenario):
            session.ingest(event)
            session.engine.refresh()
            for view in views:
                _check_view(session, view)
        # Final barrier: the batch pipeline over the surviving offers is the
        # fourth engine's verdict on the same standing specs.
        batch = session.snapshot()
        session_grid = session.grid
        from repro.session.query import execute

        for view in views:
            oracle = execute(batch, session_grid, view.spec)
            assert oracle.matches(view.result), (
                f"view {view.name!r} diverged from the batch oracle"
            )


def test_maintenance_is_delta_driven_not_recompute(small_scenario):
    """Foreign-region commits are skipped; the view never refreshes itself."""
    with FlexSession(small_scenario, engine="live", live_preload=False) as session:
        view = session.materialize(QuerySpec.build(region="Capital"), name="capital")
        applied_baseline = view.deltas_applied
        for event in _mutated_events(small_scenario):
            session.ingest(event)
            session.engine.refresh()
        assert view.refreshes == 0, "delta maintenance fell back to recompute"
        assert view.commits_skipped > 0, (
            "a region view should skip commits that only touched other regions"
        )
        assert view.deltas_applied > applied_baseline
        stats = view.stats()
        assert stats["staleness"] == 0
        assert view.result.scanned_rows == 0, "a maintained view never scans"


# ----------------------------------------------------------------------
# Random interleavings (hypothesis op scripts, mirroring the engine harness)
# ----------------------------------------------------------------------
INSERT, MUTATE, WITHDRAW, COMMIT = range(4)

_ops = st.lists(
    st.tuples(
        st.sampled_from((INSERT, INSERT, MUTATE, MUTATE, WITHDRAW, COMMIT, COMMIT)),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=200),
    ),
    min_size=4,
    max_size=40,
)


@pytest.mark.parametrize("engine", LIVE_ENGINES)
@given(ops=_ops)
@settings(deadline=None, max_examples=20)
def test_random_interleavings_keep_views_fresh(small_scenario, engine, ops):
    """Scripted insert/mutate/withdraw interleavings: checked at every commit."""
    with FlexSession(small_scenario, engine=engine, live_preload=False) as session:
        views = [
            session.materialize(QuerySpec.build(parameters=session.parameters), name="agg"),
            session.materialize(QuerySpec.build(prosumer_id=2), name="p2"),
        ]
        population: dict[int, object] = {}
        order: list[int] = []
        next_id = 1
        for op, selector, magnitude in ops:
            if op == COMMIT:
                session.engine.refresh()
                for view in views:
                    _check_view(session, view)
                continue
            if op == INSERT or not order:
                offer = make_offer(
                    offer_id=next_id,
                    earliest_start=36 + selector % 12,
                    time_flexibility=4 + selector % 6,
                    prosumer_id=selector % 5 + 1,
                )
                next_id += 1
                population[offer.id] = offer
                order.append(offer.id)
                event = OfferAdded(offer.creation_time, offer)
            elif op == MUTATE:
                target = order[selector % len(order)]
                current = population[target]
                revised = replace(
                    current,
                    price_per_kwh=current.price_per_kwh + magnitude / 100.0,
                    earliest_start_slot=current.earliest_start_slot + magnitude % 3,
                    latest_start_slot=current.latest_start_slot + magnitude % 3,
                )
                population[target] = revised
                event = OfferUpdated(current.creation_time, revised)
            else:  # WITHDRAW
                target = order.pop(selector % len(order))
                offer = population.pop(target)
                event = OfferWithdrawn(
                    offer.assignment_deadline + timedelta(minutes=15), target
                )
            session.ingest(event)
        session.engine.refresh()
        for view in views:
            _check_view(session, view)


# ----------------------------------------------------------------------
# Standing state across engine swaps (the subscription-orphaning bugfix)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("target", LIVE_ENGINES)
def test_subscriptions_survive_engine_swaps(small_scenario, target):
    """A session.subscribe callback keeps firing after use_engine() swaps."""
    with FlexSession(small_scenario, engine="live") as session:
        notifications = []
        subscription = session.subscribe(
            QuerySpec(), notifications.append, name="standing"
        )
        session.use_engine(target)
        before = len(notifications)
        fresh = make_offer(offer_id=990_001, earliest_start=40, time_flexibility=6)
        session.ingest(OfferAdded(fresh.creation_time, fresh))
        session.commit()
        assert len(notifications) > before, (
            f"subscription went silent after swapping to {target!r}"
        )
        # The un-registration bug: before the fix this returned False because
        # the handle lived in the abandoned engine's hub.
        assert session.unsubscribe(subscription) is True
        mark = len(notifications)
        another = make_offer(offer_id=990_002, earliest_start=41, time_flexibility=6)
        session.ingest(OfferAdded(another.creation_time, another))
        session.commit()
        assert len(notifications) == mark, "unsubscribed callback still fired"
        assert session.unsubscribe(subscription) is False


def test_views_follow_engine_swaps_and_replay(small_scenario):
    """Materialized views stay fresh across swaps and replay(engine=...)."""
    with FlexSession(small_scenario, engine="live") as session:
        spec = QuerySpec.build(parameters=session.parameters)
        view = session.materialize(spec, name="agg")
        for target in ("sharded", "async", "live"):
            session.use_engine(target)
            session.engine.refresh()
            _check_view(session, view)
            victim = next(o for o in session.engine.offers() if not o.is_aggregate)
            session.ingest(OfferWithdrawn(victim.assignment_deadline, victim.id))
            session.commit()
            _check_view(session, view)
        # replay(engine=...) resets the live state: the view must re-base on
        # the emptied engine and then track the replayed stream.
        session.replay(update_fraction=0.2, withdraw_fraction=0.1, engine="sharded")
        session.engine.refresh()
        _check_view(session, view)
        assert view.refreshes >= 1, "a reset replay must re-base the view"


def test_live_accessor_does_not_steal_views(small_scenario):
    """session.live must not move standing views off the active engine."""
    with FlexSession(small_scenario, engine="sharded") as session:
        view = session.materialize(
            QuerySpec.build(parameters=session.parameters), name="agg"
        )
        backend = session.engine
        _ = session.live  # creates the live backend without switching
        assert session.engine is backend
        assert view._backend is backend


def test_materialize_registry_api(small_scenario):
    with FlexSession(small_scenario, engine="live") as session:
        spec = QuerySpec.build(region="Capital")
        view = session.materialize(spec, name="capital")
        assert session.materialized("capital") is view
        assert view in session.materialized_views
        assert "materialized_views" in session.summary()
        with pytest.raises(SessionError):
            session.materialize(spec, name="capital")  # duplicate name
        dropped = session.drop_materialized("capital")
        assert dropped is view
        assert not view.attached
        with pytest.raises(SessionError):
            session.materialized("capital")
        # Detached views keep their last result but refuse to refresh.
        assert dropped.result is not None
        with pytest.raises(SessionError):
            dropped.refresh()


def test_materialize_requires_live_family(small_scenario):
    with FlexSession(small_scenario, engine="batch") as session:
        with pytest.raises(SessionError):
            session.materialize(QuerySpec())


# ----------------------------------------------------------------------
# Checkpoint / restore mid-stream
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ("live", "sharded"))
def test_restore_mid_stream_rebases_views(tmp_path, small_scenario, engine):
    """Views materialized on a restored session track the tail, versions intact."""
    from repro.store import RecoveryManager

    events = _mutated_events(small_scenario)
    cut = len(events) // 2
    manager = RecoveryManager(tmp_path / "ckpt")
    manager.record(events)
    with FlexSession(small_scenario, engine=engine, live_preload=False) as session:
        session.replay(events[:cut], reset=False)
        manager.checkpoint(session, offset=cut)

    restored = FlexSession.restore(tmp_path / "ckpt", engine=engine)
    try:
        spec = QuerySpec.build(parameters=restored.parameters)
        view = restored.materialize(spec, name="agg")
        # The view re-based on the restored state, which already includes the
        # replayed tail; its version must be the read path's published one.
        _check_view(restored, view)
        # Keep streaming past the restore: still maintained, versions advance.
        v0 = view.version
        victim = next(o for o in restored.engine.offers() if not o.is_aggregate)
        restored.ingest(OfferWithdrawn(victim.assignment_deadline, victim.id))
        restored.commit()
        assert view.version > v0
        _check_view(restored, view)
    finally:
        restored.close()

"""Tests for appliance archetypes, prosumers, RES, demand and flex-offer generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen.appliances import ARCHETYPES, archetype_by_name, sample_archetype
from repro.datagen.demand import base_demand_for_prosumer, spot_prices, total_base_demand
from repro.datagen.flexoffers import FlexOfferGenerationConfig, generate_flex_offers
from repro.datagen.geography import generate_geography
from repro.datagen.grid import generate_grid
from repro.datagen.prosumers import ProsumerType, generate_prosumers, prosumers_by_type
from repro.datagen.res import solar_production, total_res_production, wind_production
from repro.errors import DataGenerationError
from repro.flexoffer.model import Direction


@pytest.fixture(scope="module")
def geography():
    return generate_geography()


@pytest.fixture(scope="module")
def topology(geography):
    return generate_grid(geography)


@pytest.fixture(scope="module")
def prosumers(geography, topology):
    return generate_prosumers(geography, topology, 80, seed=2)


class TestAppliances:
    def test_archetype_lookup(self):
        assert archetype_by_name("electric_vehicle").direction is Direction.CONSUMPTION

    def test_unknown_archetype_raises_keyerror(self):
        with pytest.raises(KeyError):
            archetype_by_name("teleporter")

    def test_all_archetypes_have_valid_ranges(self):
        for archetype in ARCHETYPES:
            assert archetype.duration_slots_range[0] <= archetype.duration_slots_range[1]
            assert archetype.slice_min_energy_range[0] <= archetype.slice_min_energy_range[1]
            assert archetype.energy_band_factor_range[0] >= 1.0
            assert archetype.popularity > 0

    def test_sample_archetype_respects_allowed(self):
        rng = np.random.default_rng(0)
        allowed = (archetype_by_name("heat_pump"),)
        assert sample_archetype(rng, allowed).name == "heat_pump"

    def test_production_archetypes_exist(self):
        assert any(a.direction is Direction.PRODUCTION for a in ARCHETYPES)


class TestProsumers:
    def test_count(self, prosumers):
        assert len(prosumers) == 80

    def test_ids_are_unique_and_sequential(self, prosumers):
        assert [p.id for p in prosumers] == list(range(1, 81))

    def test_households_dominate(self, prosumers):
        groups = prosumers_by_type(prosumers)
        assert len(groups[ProsumerType.HOUSEHOLD]) > len(groups[ProsumerType.POWER_PLANT])

    def test_every_prosumer_has_appliances(self, prosumers):
        assert all(p.appliances for p in prosumers)

    def test_every_prosumer_is_placed(self, prosumers, geography):
        districts = {d.name for d in geography.all_districts()}
        assert all(p.district in districts for p in prosumers)

    def test_grid_node_matches_district(self, prosumers, topology):
        for prosumer in prosumers[:20]:
            feeder = topology.feeder_for_district(prosumer.district)
            assert prosumer.grid_node == feeder.name

    def test_zero_count_rejected(self, geography, topology):
        with pytest.raises(DataGenerationError):
            generate_prosumers(geography, topology, 0)

    def test_deterministic_given_seed(self, geography, topology):
        first = generate_prosumers(geography, topology, 10, seed=3)
        second = generate_prosumers(geography, topology, 10, seed=3)
        assert [p.district for p in first] == [p.district for p in second]

    def test_is_producer_flag(self, prosumers):
        producing = [p for p in prosumers if p.is_producer]
        for prosumer in producing[:5]:
            assert any(a.direction is Direction.PRODUCTION for a in prosumer.appliances)


class TestResAndDemand:
    def test_solar_is_zero_at_night(self, grid):
        series = solar_production(grid, 0, 96)
        # Slots 0..8 are 00:00-02:00 — no sun.
        assert series.values[:8].sum() == 0.0

    def test_solar_peaks_midday(self, grid):
        series = solar_production(grid, 0, 96)
        peak_slot = int(np.argmax(series.values))
        assert 40 <= peak_slot <= 64  # between 10:00 and 16:00

    def test_solar_rejects_bad_cloudiness(self, grid):
        with pytest.raises(DataGenerationError):
            solar_production(grid, 0, 96, cloudiness=2.0)

    def test_wind_is_nonnegative_and_bounded(self, grid):
        series = wind_production(grid, 0, 96, capacity_kw=1000.0)
        assert (series.values >= 0).all()
        assert series.values.max() <= 1000.0 * grid.hours_per_slot + 1e-9

    def test_wind_rejects_bad_capacity_factor(self, grid):
        with pytest.raises(DataGenerationError):
            wind_production(grid, 0, 96, mean_capacity_factor=1.5)

    def test_total_res_is_sum_of_parts(self, grid):
        total = total_res_production(grid, 0, 96, seed=5)
        assert total.total() > 0
        assert len(total) == 96

    def test_base_demand_scales_with_population(self, grid, prosumers):
        few = total_base_demand(prosumers[:10], grid, 0, 96)
        many = total_base_demand(prosumers, grid, 0, 96)
        assert many.total() > few.total()

    def test_base_demand_per_prosumer_positive(self, grid, prosumers):
        series = base_demand_for_prosumer(prosumers[0], grid, 0, 96)
        assert (series.values > 0).all()

    def test_spot_prices_positive(self, grid):
        prices = spot_prices(grid, 0, 96)
        assert (prices.values >= 0).all()
        assert prices.unit == "EUR/MWh"


class TestFlexOfferGeneration:
    def test_offers_are_generated(self, prosumers, grid):
        offers = generate_flex_offers(prosumers, grid, FlexOfferGenerationConfig(seed=1))
        assert len(offers) > 0

    def test_offer_ids_unique(self, prosumers, grid):
        offers = generate_flex_offers(prosumers, grid, FlexOfferGenerationConfig(seed=1))
        ids = [offer.id for offer in offers]
        assert len(ids) == len(set(ids))

    def test_offers_start_inside_horizon(self, prosumers, grid):
        config = FlexOfferGenerationConfig(horizon_start_slot=0, horizon_slots=96, seed=2)
        offers = generate_flex_offers(prosumers, grid, config)
        assert all(0 <= offer.earliest_start_slot < 96 for offer in offers)

    def test_deadlines_precede_start(self, prosumers, grid):
        offers = generate_flex_offers(prosumers, grid, FlexOfferGenerationConfig(seed=3))
        for offer in offers[:50]:
            start = grid.to_datetime(offer.earliest_start_slot)
            assert offer.creation_time <= offer.acceptance_deadline <= offer.assignment_deadline <= start

    def test_offer_attributes_come_from_prosumer(self, prosumers, grid):
        offers = generate_flex_offers(prosumers, grid, FlexOfferGenerationConfig(seed=4))
        by_id = {p.id: p for p in prosumers}
        for offer in offers[:50]:
            prosumer = by_id[offer.prosumer_id]
            assert offer.region == prosumer.region
            assert offer.grid_node == prosumer.grid_node

    def test_empty_population_rejected(self, grid):
        with pytest.raises(DataGenerationError):
            generate_flex_offers([], grid)

    def test_deterministic_given_seed(self, prosumers, grid):
        first = generate_flex_offers(prosumers, grid, FlexOfferGenerationConfig(seed=6))
        second = generate_flex_offers(prosumers, grid, FlexOfferGenerationConfig(seed=6))
        assert [o.earliest_start_slot for o in first] == [o.earliest_start_slot for o in second]

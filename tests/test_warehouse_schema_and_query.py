"""Tests for the star schema, the scenario loader, the repository query API and persistence."""

from __future__ import annotations

import pytest

from repro.errors import UnknownTableError, WarehouseError
from repro.flexoffer.model import FlexOfferState
from repro.warehouse.loader import load_scenario
from repro.warehouse.persistence import load_schema, save_schema
from repro.warehouse.query import FlexOfferFilter, FlexOfferRepository
from repro.warehouse.schema import DIMENSION_TABLES, FACT_TABLES, StarSchema


@pytest.fixture(scope="module")
def loaded(scenario):
    schema = load_scenario(scenario)
    return schema, FlexOfferRepository(schema, scenario.grid)


class TestStarSchema:
    def test_empty_schema_declares_all_tables(self):
        schema = StarSchema.empty()
        for name in list(DIMENSION_TABLES) + list(FACT_TABLES):
            assert name in schema.tables

    def test_unknown_table_raises(self):
        with pytest.raises(UnknownTableError):
            StarSchema.empty().table("fact_unicorns")

    def test_dimension_and_fact_names(self):
        schema = StarSchema.empty()
        assert set(schema.dimension_names) == set(DIMENSION_TABLES)
        assert set(schema.fact_names) == set(FACT_TABLES)

    def test_row_counts_all_zero_when_empty(self):
        counts = StarSchema.empty().row_counts()
        assert all(count == 0 for count in counts.values())


class TestLoader:
    def test_fact_row_per_offer(self, loaded, scenario):
        schema, _ = loaded
        assert len(schema.table("fact_flexoffer")) == len(scenario.flex_offers)

    def test_slice_rows_match_profiles(self, loaded, scenario):
        schema, _ = loaded
        expected = sum(len(offer.profile) for offer in scenario.flex_offers)
        assert len(schema.table("fact_flexoffer_slice")) == expected

    def test_time_dimension_covers_horizon(self, loaded, scenario):
        schema, _ = loaded
        assert len(schema.table("dim_time")) == scenario.config.horizon_slots

    def test_geography_dimension_covers_districts(self, loaded, scenario):
        schema, _ = loaded
        assert len(schema.table("dim_geography")) == len(scenario.geography.all_districts())

    def test_prosumer_dimension(self, loaded, scenario):
        schema, _ = loaded
        assert len(schema.table("dim_prosumer")) == len(scenario.prosumers)
        assert len(schema.table("dim_legal_entity")) == len(scenario.prosumers)

    def test_timeseries_fact_has_three_kinds(self, loaded):
        schema, _ = loaded
        kinds = set(schema.table("fact_timeseries").column("kind"))
        assert kinds == {"base_demand", "res_production", "spot_price"}


class TestRepository:
    def test_load_all(self, loaded, scenario):
        _, repo = loaded
        result = repo.load()
        assert len(result) == len(scenario.flex_offers)
        assert result.scanned_rows == len(scenario.flex_offers)

    def test_loaded_offers_roundtrip_payload(self, loaded, scenario):
        _, repo = loaded
        offers = {offer.id: offer for offer in repo.load().offers}
        for original in scenario.flex_offers[:20]:
            assert offers[original.id] == original

    def test_filter_by_state(self, loaded, scenario):
        _, repo = loaded
        result = repo.load(FlexOfferFilter(states=(FlexOfferState.ASSIGNED.value,)))
        expected = sum(1 for o in scenario.flex_offers if o.state is FlexOfferState.ASSIGNED)
        assert len(result) == expected

    def test_filter_by_region(self, loaded, scenario):
        _, repo = loaded
        result = repo.load(FlexOfferFilter(regions=("Capital",)))
        assert all(offer.region == "Capital" for offer in result.offers)
        assert len(result) == sum(1 for o in scenario.flex_offers if o.region == "Capital")

    def test_filter_by_city_and_appliance(self, loaded, scenario):
        _, repo = loaded
        result = repo.load(FlexOfferFilter(cities=("Copenhagen",), appliance_types=("electric_vehicle",)))
        assert all(o.city == "Copenhagen" and o.appliance_type == "electric_vehicle" for o in result.offers)

    def test_state_filter_is_index_planned(self, loaded, scenario):
        _, repo = loaded
        result = repo.load(FlexOfferFilter(states=(FlexOfferState.ASSIGNED.value,)))
        # The state index narrows the scan to exactly the matching rows.
        assert result.scanned_rows == result.matched_rows
        assert result.scanned_rows < len(scenario.flex_offers)

    def test_grid_node_filter_is_index_planned(self, loaded, scenario):
        _, repo = loaded
        node = scenario.flex_offers[0].grid_node
        result = repo.load(FlexOfferFilter(grid_nodes=(node,)))
        assert result.scanned_rows == result.matched_rows
        assert all(offer.grid_node == node for offer in result.offers)

    def test_intersected_index_plan(self, loaded, scenario):
        _, repo = loaded
        node = scenario.flex_offers[0].grid_node
        per_node = repo.load(FlexOfferFilter(grid_nodes=(node,)))
        both = repo.load(
            FlexOfferFilter(grid_nodes=(node,), states=(FlexOfferState.ASSIGNED.value,))
        )
        # Candidates are the intersection of both index hits, so the combined
        # plan scans no more rows than the narrower single-filter plan.
        assert both.scanned_rows <= per_node.scanned_rows
        assert both.scanned_rows == both.matched_rows
        expected = sum(
            1
            for offer in scenario.flex_offers
            if offer.grid_node == node and offer.state is FlexOfferState.ASSIGNED
        )
        assert len(both) == expected

    def test_geo_filters_push_down_onto_geo_id_index(self, loaded, scenario):
        _, repo = loaded
        result = repo.load(FlexOfferFilter(regions=("Capital",)))
        # regions resolve through the geography dimension onto the geo_id
        # index: only the candidate rows are examined, not the whole table.
        assert result.scanned_rows == result.matched_rows
        assert result.scanned_rows < len(scenario.flex_offers)
        expected = [o for o in scenario.flex_offers if o.region == "Capital"]
        assert sorted(o.id for o in result.offers) == sorted(o.id for o in expected)

    def test_geo_pushdown_matches_scan_fallback(self, loaded, scenario):
        _, repo = loaded
        cities = tuple(sorted({offer.city for offer in scenario.flex_offers})[:2])
        pushed = repo.load(FlexOfferFilter(cities=cities, states=("assigned",)))
        expected = [
            o for o in scenario.flex_offers if o.city in cities and o.state.value == "assigned"
        ]
        assert sorted(o.id for o in pushed.offers) == sorted(o.id for o in expected)
        assert pushed.scanned_rows <= len(scenario.flex_offers)

    def test_unindexed_filters_still_scan_correctly(self, loaded, scenario):
        _, repo = loaded
        result = repo.load(FlexOfferFilter(energy_types=("grid",)))
        # energy_type has no index; the linear scan remains the fallback.
        assert result.scanned_rows == len(scenario.flex_offers)

    def test_load_for_entity(self, loaded, scenario):
        _, repo = loaded
        prosumer = scenario.prosumers[0]
        result = repo.load_for_entity(prosumer.id)
        assert all(offer.prosumer_id == prosumer.id for offer in result.offers)
        assert len(result) == len(scenario.offers_of_prosumer(prosumer.id))

    def test_interval_filter_overlap_semantics(self, loaded, scenario):
        _, repo = loaded
        start = scenario.grid.to_datetime(40)
        end = scenario.grid.to_datetime(48)
        result = repo.load(FlexOfferFilter(interval_start=start, interval_end=end))
        for offer in result.offers:
            assert offer.earliest_start_slot < 48
            assert offer.latest_end_slot > 40

    def test_interval_excludes_non_overlapping(self, loaded, scenario):
        _, repo = loaded
        start = scenario.grid.to_datetime(0)
        end = scenario.grid.to_datetime(1)
        result = repo.load(FlexOfferFilter(interval_start=start, interval_end=end))
        assert all(offer.earliest_start_slot < 1 for offer in result.offers)

    def test_legal_entities_listing(self, loaded, scenario):
        _, repo = loaded
        assert len(repo.legal_entities()) == len(scenario.prosumers)

    def test_known_values(self, loaded):
        _, repo = loaded
        states = repo.known_values("state")
        assert set(states) <= {state.value for state in FlexOfferState}

    def test_load_series(self, loaded, scenario):
        _, repo = loaded
        demand = repo.load_series("base_demand")
        assert demand.total() == pytest.approx(scenario.base_demand.total())

    def test_load_missing_series_raises(self, loaded):
        _, repo = loaded
        with pytest.raises(WarehouseError):
            repo.load_series("weather")

    def test_summary(self, loaded, scenario):
        _, repo = loaded
        summary = repo.summary()
        assert summary["offer_count"] == len(scenario.flex_offers)
        assert sum(summary["states"].values()) == len(scenario.flex_offers)

    def test_filter_describe(self):
        description = FlexOfferFilter(regions=("Capital",), states=("assigned",)).describe()
        assert "Capital" in description and "assigned" in description
        assert FlexOfferFilter().describe() == "all flex-offers"


class TestPersistence:
    def test_save_and_load_roundtrip(self, loaded, scenario, tmp_path):
        schema, repo = loaded
        save_schema(schema, tmp_path)
        reloaded = load_schema(tmp_path)
        assert reloaded.row_counts() == schema.row_counts()
        repo2 = FlexOfferRepository(reloaded, scenario.grid)
        assert len(repo2.load()) == len(scenario.flex_offers)
        # Offers must round-trip through CSV persistence losslessly.
        original = {offer.id: offer for offer in repo.load().offers}
        for offer in repo2.load().offers[:20]:
            assert offer == original[offer.id]

    def test_load_dump_missing_new_columns(self, loaded, tmp_path):
        # A dump written before a column existed (e.g. group_cell) must still
        # load, with the missing column defaulting to empty.
        import csv
        import io

        schema, _ = loaded
        save_schema(schema, tmp_path / "dw")
        csv_path = tmp_path / "dw" / "fact_flexoffer.csv"
        rows = list(csv.reader(io.StringIO(csv_path.read_text())))
        drop = rows[0].index("group_cell")
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        for row in rows:
            writer.writerow([cell for index, cell in enumerate(row) if index != drop])
        csv_path.write_text(buffer.getvalue())
        reloaded = load_schema(tmp_path / "dw")
        fact = reloaded.table("fact_flexoffer")
        assert len(fact) == len(schema.table("fact_flexoffer"))
        assert set(fact.column("group_cell")) == {""}

    def test_load_from_missing_directory_raises(self, tmp_path):
        with pytest.raises(WarehouseError):
            load_schema(tmp_path / "does-not-exist")

    def test_save_writes_one_file_per_table(self, loaded, tmp_path):
        schema, _ = loaded
        written = save_schema(schema, tmp_path / "dw")
        assert len(written) == len(schema.tables)

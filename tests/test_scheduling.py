"""Tests for the balancing problem, schedulers and the aggregate-then-schedule pipeline."""

from __future__ import annotations

import pytest

from repro.errors import SchedulingError
from repro.flexoffer.model import FlexOfferState
from repro.scheduling.evaluation import absorbed_energy, compare, report
from repro.scheduling.greedy import EarliestStartScheduler, GreedyScheduler
from repro.scheduling.pipeline import schedule_offers
from repro.scheduling.problem import BalancingProblem, BalancingSolution, make_target
from repro.scheduling.stochastic import StochasticConfig, StochasticScheduler
from repro.timeseries.series import TimeSeries
from tests.conftest import make_offer


@pytest.fixture
def simple_problem(grid):
    """Two flexible offers and a target with one clear surplus window."""
    offers = [
        make_offer(offer_id=1, earliest_start=10, time_flexibility=20, profile=((1.0, 2.0), (1.0, 2.0))),
        make_offer(offer_id=2, earliest_start=12, time_flexibility=20, profile=((0.5, 1.5),)),
    ]
    values = [0.0] * 48
    for slot in range(24, 30):
        values[slot] = 3.0
    target = TimeSeries(grid, 0, values, name="target", unit="kWh")
    return BalancingProblem(offers=offers, target=target, grid=grid)


@pytest.fixture
def scenario_problem(scenario):
    plannable = [o for o in scenario.flex_offers if o.state is not FlexOfferState.REJECTED]
    target = make_target(scenario.res_production, scenario.base_demand)
    return BalancingProblem(offers=plannable, target=target, grid=scenario.grid)


class TestProblem:
    def test_empty_target_rejected(self, grid):
        with pytest.raises(SchedulingError):
            BalancingProblem(offers=[], target=TimeSeries(grid, 0, []), grid=grid)

    def test_make_target_clips_negative(self, scenario):
        target = make_target(scenario.res_production, scenario.base_demand)
        assert target.minimum() >= 0.0

    def test_make_target_without_clipping(self, scenario):
        target = make_target(scenario.res_production, scenario.base_demand, clip_negative=False)
        assert target.values.tolist() == (scenario.res_production - scenario.base_demand).values.tolist()

    def test_empty_solution_has_full_imbalance(self, simple_problem):
        solution = BalancingSolution(problem=simple_problem)
        assert solution.imbalance_energy() == pytest.approx(simple_problem.target.total())


class TestEarliestStartScheduler:
    def test_every_offer_scheduled(self, simple_problem):
        solution = EarliestStartScheduler().schedule(simple_problem)
        assert len(solution.scheduled_offers) == len(simple_problem.offers)
        assert all(offer.schedule is not None for offer in solution.scheduled_offers)

    def test_starts_at_earliest(self, simple_problem):
        solution = EarliestStartScheduler().schedule(simple_problem)
        for original, scheduled in zip(simple_problem.offers, solution.scheduled_offers):
            assert scheduled.schedule.start_slot == original.earliest_start_slot


class TestGreedyScheduler:
    def test_every_offer_scheduled_feasibly(self, scenario_problem):
        solution = GreedyScheduler().schedule(scenario_problem)
        assert len(solution.scheduled_offers) == len(scenario_problem.offers)
        for offer in solution.scheduled_offers:
            assert offer.earliest_start_slot <= offer.schedule.start_slot <= offer.latest_start_slot

    def test_moves_load_into_surplus_window(self, simple_problem):
        solution = GreedyScheduler().schedule(simple_problem)
        for offer in solution.scheduled_offers:
            assert 24 <= offer.schedule.start_slot <= 30

    def test_beats_earliest_start_baseline(self, simple_problem):
        greedy = GreedyScheduler().schedule(simple_problem)
        baseline = EarliestStartScheduler().schedule(simple_problem)
        assert greedy.squared_error() < baseline.squared_error()

    def test_scheduled_load_matches_offers(self, simple_problem):
        solution = GreedyScheduler().schedule(simple_problem)
        total = sum(offer.scheduled_energy for offer in solution.scheduled_offers)
        assert solution.scheduled_load().total() == pytest.approx(total)

    def test_runtime_recorded(self, simple_problem):
        solution = GreedyScheduler().schedule(simple_problem)
        assert solution.runtime_seconds > 0.0
        assert solution.scheduler_name == "greedy"


class TestStochasticScheduler:
    def test_never_worse_than_greedy(self, scenario_problem):
        greedy = GreedyScheduler().schedule(scenario_problem)
        stochastic = StochasticScheduler(StochasticConfig(iterations=300, seed=1)).schedule(scenario_problem)
        assert stochastic.squared_error() <= greedy.squared_error() + 1e-6

    def test_schedules_remain_feasible(self, scenario_problem):
        solution = StochasticScheduler(StochasticConfig(iterations=200, seed=2)).schedule(scenario_problem)
        for offer in solution.scheduled_offers:
            assert offer.earliest_start_slot <= offer.schedule.start_slot <= offer.latest_start_slot
            for piece, amount in zip(offer.profile, offer.schedule.energy_per_slice):
                assert piece.min_energy - 1e-9 <= amount <= piece.max_energy + 1e-9

    def test_empty_problem(self, grid):
        problem = BalancingProblem(offers=[], target=TimeSeries(grid, 0, [1.0] * 4), grid=grid)
        solution = StochasticScheduler(StochasticConfig(iterations=10)).schedule(problem)
        assert solution.scheduled_offers == []


class TestPipeline:
    def test_pipeline_with_aggregation(self, scenario, scenario_problem):
        result = schedule_offers(
            scenario_problem.offers,
            scenario_problem.target,
            scenario.grid,
            GreedyScheduler(),
            use_aggregation=True,
        )
        assert len(result.assigned_offers) == len(scenario_problem.offers)
        assert result.scheduled_object_count <= len(scenario_problem.offers)
        for offer in result.assigned_offers:
            assert offer.schedule is not None

    def test_pipeline_without_aggregation(self, scenario, scenario_problem):
        result = schedule_offers(
            scenario_problem.offers,
            scenario_problem.target,
            scenario.grid,
            GreedyScheduler(),
            use_aggregation=False,
        )
        assert result.scheduled_object_count == len(scenario_problem.offers)

    def test_aggregation_reduces_objects_to_schedule(self, scenario, scenario_problem):
        with_aggregation = schedule_offers(
            scenario_problem.offers, scenario_problem.target, scenario.grid, GreedyScheduler(), use_aggregation=True
        )
        without = schedule_offers(
            scenario_problem.offers, scenario_problem.target, scenario.grid, GreedyScheduler(), use_aggregation=False
        )
        assert with_aggregation.scheduled_object_count < without.scheduled_object_count

    def test_scheduled_load_covers_target_window(self, scenario, scenario_problem):
        result = schedule_offers(
            scenario_problem.offers, scenario_problem.target, scenario.grid, GreedyScheduler()
        )
        load = result.scheduled_load(scenario.grid, scenario_problem.target)
        assert load.start_slot == scenario_problem.target.start_slot
        assert len(load) == len(scenario_problem.target)


class TestEvaluation:
    def test_absorbed_energy_bounds(self, scenario_problem):
        solution = GreedyScheduler().schedule(scenario_problem)
        absorbed = absorbed_energy(scenario_problem.target, solution.scheduled_load())
        assert 0.0 <= absorbed <= scenario_problem.target.total() + 1e-9

    def test_report_fields(self, simple_problem):
        solution = GreedyScheduler().schedule(simple_problem)
        result = report(solution)
        assert result.scheduler_name == "greedy"
        assert result.scheduled_object_count == len(simple_problem.offers)
        assert 0.0 <= result.absorption_ratio <= 1.0

    def test_compare_renders_all_rows(self, simple_problem):
        reports = [
            report(EarliestStartScheduler().schedule(simple_problem)),
            report(GreedyScheduler().schedule(simple_problem)),
        ]
        text = compare(reports)
        assert "earliest-start" in text and "greedy" in text

"""Tests for the OLAP cube, pivot tables and the MDX subset."""

from __future__ import annotations

import pytest

from repro.errors import MdxSyntaxError, UnknownDimensionError
from repro.flexoffer.model import FlexOfferState
from repro.olap.cube import FlexOfferCube, GroupBy, MemberFilter
from repro.olap.mdx import execute, parse
from repro.olap.pivot import pivot


@pytest.fixture(scope="module")
def cube(scenario):
    return FlexOfferCube(scenario.flex_offers, scenario.grid, topology=scenario.topology)


class TestCubeAggregation:
    def test_total_count_preserved(self, cube, scenario):
        cell_set = cube.aggregate([GroupBy("Geography", "region")], ["flex_offer_count"])
        assert cell_set.totals()["flex_offer_count"] == len(scenario.flex_offers)

    def test_two_axis_grouping(self, cube, scenario):
        cell_set = cube.aggregate(
            [GroupBy("Geography", "region"), GroupBy("State", "state")], ["flex_offer_count"]
        )
        assert all(len(cell.coordinates) == 2 for cell in cell_set.cells)
        assert cell_set.totals()["flex_offer_count"] == len(scenario.flex_offers)

    def test_all_level_collapses_to_one_cell(self, cube, scenario):
        cell_set = cube.aggregate([GroupBy("Geography", "all")], ["flex_offer_count"])
        assert len(cell_set.cells) == 1
        assert cell_set.cells[0].values["flex_offer_count"] == len(scenario.flex_offers)

    def test_unknown_dimension_raises(self, cube):
        with pytest.raises(UnknownDimensionError):
            cube.aggregate([GroupBy("Weather", "all")], ["flex_offer_count"])

    def test_cell_lookup_and_default(self, cube):
        cell_set = cube.aggregate([GroupBy("Geography", "region")], ["flex_offer_count"])
        member = cell_set.axis_members(0)[0]
        assert cell_set.value((member,), "flex_offer_count") > 0
        assert cell_set.value(("Atlantis",), "flex_offer_count", default=-1.0) == -1.0

    def test_offer_counts_match_cell_counts(self, cube):
        cell_set = cube.aggregate([GroupBy("State", "state")], ["flex_offer_count"])
        for cell in cell_set.cells:
            assert cell.offer_count == cell.values["flex_offer_count"]


class TestCubeFiltering:
    def test_filter_reduces_offers(self, cube):
        filtered = cube.filter([MemberFilter("Geography", "region", ("Capital",))])
        assert 0 < len(filtered.offers) < len(cube.offers)
        assert all(offer.region == "Capital" for offer in filtered.offers)

    def test_slice_is_single_member_filter(self, cube):
        sliced = cube.slice("State", "state", FlexOfferState.ASSIGNED.value)
        assert all(offer.state is FlexOfferState.ASSIGNED for offer in sliced.offers)

    def test_nested_filters(self, cube):
        filtered = cube.filter(
            [
                MemberFilter("Geography", "region", ("Capital", "Zealand")),
                MemberFilter("State", "state", ("assigned",)),
            ]
        )
        assert all(
            offer.region in ("Capital", "Zealand") and offer.state is FlexOfferState.ASSIGNED
            for offer in filtered.offers
        )

    def test_aggregate_with_filters_argument(self, cube):
        direct = cube.filter([MemberFilter("Geography", "region", ("Capital",))]).aggregate(
            [GroupBy("State", "state")], ["flex_offer_count"]
        )
        via_argument = cube.aggregate(
            [GroupBy("State", "state")],
            ["flex_offer_count"],
            filters=[MemberFilter("Geography", "region", ("Capital",))],
        )
        assert direct.totals() == via_argument.totals()

    def test_members_enumeration(self, cube, scenario):
        regions = cube.members("Geography", "region")
        assert set(regions) == {offer.region for offer in scenario.flex_offers}


class TestDrill:
    def test_drill_down_region_to_city(self, cube):
        coarse = cube.aggregate([GroupBy("Geography", "region")], ["flex_offer_count"])
        fine = cube.drill_down(coarse, axis=0)
        assert fine.group_by[0].level == "city"
        assert fine.totals()["flex_offer_count"] == coarse.totals()["flex_offer_count"]

    def test_drill_up_city_to_region(self, cube):
        fine = cube.aggregate([GroupBy("Geography", "city")], ["flex_offer_count"])
        coarse = cube.drill_up(fine, axis=0)
        assert coarse.group_by[0].level == "region"

    def test_drill_down_at_leaf_is_noop(self, cube):
        leaf = cube.aggregate([GroupBy("Geography", "district")], ["flex_offer_count"])
        assert cube.drill_down(leaf, axis=0) is leaf

    def test_drill_up_at_root_is_noop(self, cube):
        root = cube.aggregate([GroupBy("Geography", "all")], ["flex_offer_count"])
        assert cube.drill_up(root, axis=0) is root


class TestPivot:
    def test_pivot_shape(self, cube):
        table = pivot(
            cube,
            GroupBy("Prosumer", "prosumer_type"),
            GroupBy("Time", "hour"),
            ["flex_offer_count"],
        )
        assert len(table.values["flex_offer_count"]) == len(table.row_members)
        assert all(len(row) == len(table.column_members) for row in table.values["flex_offer_count"])

    def test_pivot_grand_total_matches(self, cube, scenario):
        table = pivot(
            cube, GroupBy("Prosumer", "prosumer_type"), GroupBy("Time", "hour"), ["flex_offer_count"]
        )
        assert sum(table.row_totals("flex_offer_count")) == len(scenario.flex_offers)
        assert sum(table.column_totals("flex_offer_count")) == len(scenario.flex_offers)

    def test_pivot_time_columns_sorted(self, cube):
        table = pivot(
            cube, GroupBy("Prosumer", "prosumer_type"), GroupBy("Time", "hour"), ["flex_offer_count"]
        )
        assert table.column_members == sorted(table.column_members)

    def test_pivot_value_lookup(self, cube):
        table = pivot(
            cube, GroupBy("Prosumer", "prosumer_type"), GroupBy("Time", "hour"), ["flex_offer_count"]
        )
        row = table.row_members[0]
        column = table.column_members[0]
        assert table.value("flex_offer_count", row, column) >= 0.0
        assert table.value("flex_offer_count", "nonexistent", column) == 0.0

    def test_pivot_to_text(self, cube):
        table = pivot(
            cube, GroupBy("Prosumer", "prosumer_type"), GroupBy("Time", "hour"), ["flex_offer_count"]
        )
        text = table.to_text("flex_offer_count")
        assert str(table.row_members[0]) in text

    def test_pivot_with_filters(self, cube):
        table = pivot(
            cube,
            GroupBy("Prosumer", "prosumer_type"),
            GroupBy("Time", "hour"),
            ["flex_offer_count"],
            filters=[MemberFilter("State", "state", ("assigned",))],
        )
        assigned = sum(1 for offer in cube.offers if offer.state is FlexOfferState.ASSIGNED)
        assert sum(table.row_totals("flex_offer_count")) == assigned


class TestMdx:
    def test_parse_basic_query(self):
        query = parse(
            "SELECT {[Measures].[flex_offer_count]} ON COLUMNS, "
            "{[Prosumer].[prosumer_type].Members} ON ROWS FROM [FlexOffers]"
        )
        assert query.measures == ("flex_offer_count",)
        assert query.rows_dimension == "Prosumer"
        assert query.rows_level == "prosumer_type"
        assert query.rows_members is None
        assert query.cube_name == "FlexOffers"

    def test_parse_multiple_measures_and_where(self):
        query = parse(
            "SELECT {[Measures].[flex_offer_count], [Measures].[scheduled_energy]} ON COLUMNS, "
            "{[Geography].[city].Members} ON ROWS FROM [FlexOffers] "
            "WHERE ([Geography].[region].[Capital], [State].[state].[assigned])"
        )
        assert query.measures == ("flex_offer_count", "scheduled_energy")
        assert query.slicers == (("Geography", "region", "Capital"), ("State", "state", "assigned"))

    def test_parse_explicit_members(self):
        query = parse(
            "SELECT {[Measures].[flex_offer_count]} ON COLUMNS, "
            "{[Prosumer].[prosumer_type].[household], [Prosumer].[prosumer_type].[commercial]} ON ROWS "
            "FROM [FlexOffers]"
        )
        assert query.rows_members == ("household", "commercial")

    def test_parse_is_case_insensitive_on_keywords(self):
        query = parse(
            "select {[Measures].[flex_offer_count]} on columns, "
            "{[State].[state].members} on rows from [FlexOffers]"
        )
        assert query.rows_dimension == "State"

    def test_parse_rejects_garbage(self):
        with pytest.raises(MdxSyntaxError):
            parse("SELECT stuff FROM nowhere")

    def test_parse_rejects_non_measures_on_columns(self):
        with pytest.raises(MdxSyntaxError):
            parse(
                "SELECT {[Geography].[region]} ON COLUMNS, "
                "{[State].[state].Members} ON ROWS FROM [FlexOffers]"
            )

    def test_parse_rejects_mixed_row_dimensions(self):
        with pytest.raises(MdxSyntaxError):
            parse(
                "SELECT {[Measures].[flex_offer_count]} ON COLUMNS, "
                "{[State].[state].[assigned], [Geography].[region].[Capital]} ON ROWS FROM [FlexOffers]"
            )

    def test_execute_members_query(self, cube, scenario):
        table = execute(
            cube,
            "SELECT {[Measures].[flex_offer_count]} ON COLUMNS, "
            "{[State].[state].Members} ON ROWS FROM [FlexOffers]",
        )
        total = sum(row[0] for row in table.values["value"])
        assert total == len(scenario.flex_offers)
        assert table.column_members == ["flex_offer_count"]

    def test_execute_with_slicer(self, cube):
        table = execute(
            cube,
            "SELECT {[Measures].[flex_offer_count]} ON COLUMNS, "
            "{[Geography].[city].Members} ON ROWS FROM [FlexOffers] "
            "WHERE ([Geography].[region].[Capital])",
        )
        capital_offers = [offer for offer in cube.offers if offer.region == "Capital"]
        assert sum(row[0] for row in table.values["value"]) == len(capital_offers)

    def test_execute_explicit_members_order(self, cube):
        table = execute(
            cube,
            "SELECT {[Measures].[flex_offer_count]} ON COLUMNS, "
            "{[Prosumer].[prosumer_type].[household], [Prosumer].[prosumer_type].[commercial]} ON ROWS "
            "FROM [FlexOffers]",
        )
        assert table.row_members == ["household", "commercial"]

"""Tests for time-series statistics and error metrics."""

from __future__ import annotations

import pytest

from repro.timeseries.series import TimeSeries
from repro.timeseries.statistics import (
    SeriesSummary,
    mean_absolute_error,
    mean_absolute_percentage_error,
    plan_deviation,
    root_mean_squared_error,
    total_absolute_deviation,
)


class TestSeriesSummary:
    def test_summary_of_simple_series(self, grid):
        summary = SeriesSummary.of(TimeSeries(grid, 0, [1, 2, 3, 4]))
        assert summary.count == 4
        assert summary.total == 10
        assert summary.mean == 2.5
        assert summary.minimum == 1
        assert summary.maximum == 4
        assert summary.std == pytest.approx(1.118, abs=1e-3)

    def test_summary_of_empty_series(self, grid):
        summary = SeriesSummary.of(TimeSeries(grid, 0, []))
        assert summary.count == 0
        assert summary.total == 0.0


class TestErrorMetrics:
    def test_identical_series_have_zero_error(self, grid):
        a = TimeSeries(grid, 0, [1, 2, 3])
        assert mean_absolute_error(a, a.copy()) == 0.0
        assert root_mean_squared_error(a, a.copy()) == 0.0
        assert mean_absolute_percentage_error(a, a.copy()) == 0.0

    def test_mae(self, grid):
        a = TimeSeries(grid, 0, [1, 2, 3])
        b = TimeSeries(grid, 0, [2, 2, 5])
        assert mean_absolute_error(a, b) == pytest.approx(1.0)

    def test_rmse_at_least_mae(self, grid):
        a = TimeSeries(grid, 0, [1, 2, 3, 4])
        b = TimeSeries(grid, 0, [3, 2, 3, 0])
        assert root_mean_squared_error(a, b) >= mean_absolute_error(a, b)

    def test_mape_ignores_zero_actuals(self, grid):
        a = TimeSeries(grid, 0, [0, 2])
        b = TimeSeries(grid, 0, [5, 3])
        assert mean_absolute_percentage_error(a, b) == pytest.approx(50.0)

    def test_disjoint_series_give_zero(self, grid):
        a = TimeSeries(grid, 0, [1, 2])
        b = TimeSeries(grid, 10, [1, 2])
        assert mean_absolute_error(a, b) == 0.0

    def test_partial_overlap_only_uses_overlap(self, grid):
        a = TimeSeries(grid, 0, [1, 1, 1, 1])
        b = TimeSeries(grid, 2, [2, 2, 2, 2])
        assert mean_absolute_error(a, b) == pytest.approx(1.0)


class TestPlanDeviation:
    def test_plan_deviation_sign(self, grid):
        planned = TimeSeries(grid, 0, [5, 5], unit="kWh")
        realized = TimeSeries(grid, 0, [4, 6], unit="kWh")
        deviation = plan_deviation(planned, realized)
        assert deviation.values.tolist() == [1, -1]
        assert deviation.name == "plan deviation"
        assert deviation.unit == "kWh"

    def test_total_absolute_deviation(self, grid):
        planned = TimeSeries(grid, 0, [5, 5])
        realized = TimeSeries(grid, 0, [4, 6])
        assert total_absolute_deviation(planned, realized) == pytest.approx(2.0)

    def test_zero_deviation_when_plan_followed(self, grid):
        planned = TimeSeries(grid, 0, [5, 5])
        assert total_absolute_deviation(planned, planned.copy()) == 0.0

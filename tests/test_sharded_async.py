"""The sharded and async-commit engines: partitioning, merging, delivery.

The contract under test: hash-partitioning the grouping grid and moving the
commit off the caller's thread are *invisible* to consumers — subscribers see
exactly one notification per logical commit carrying the merged dirty-cell
set, aggregate ids stay stable and collision-free across shards, and the
aggregated state always equals the batch pipeline over the surviving offers.
"""

from __future__ import annotations

import pytest

from repro.datagen.scenarios import ScenarioConfig, generate_scenario
from repro.errors import LiveEngineError
from repro.live.asynccommit import AsyncCommitEngine
from repro.live.engine import LiveAggregationEngine, assert_batch_equivalent
from repro.live.events import OfferAdded, OfferUpdated, OfferWithdrawn
from repro.live.sharded import ShardedAggregationEngine, shard_of_cell
from repro.live.subscriptions import ChangeCollector, SubscriptionHub
from repro.session import FlexSession, QuerySpec
from tests.conftest import make_offer


def _offers_in_distinct_shards(engine, count=3, start=10):
    """Build offers guaranteed to land in ``count`` different shards."""
    offers, seen = [], set()
    offer_id, earliest = 1, start
    while len(offers) < count:
        offer = make_offer(offer_id=offer_id, earliest_start=earliest)
        from repro.aggregation.grouping import group_key

        shard = shard_of_cell(group_key(offer, engine.parameters), engine.shard_count)
        if shard not in seen:
            seen.add(shard)
            offers.append(offer)
        offer_id += 1
        earliest += engine.parameters.est_tolerance_slots  # next grid cell
    return offers


class TestShardedEngine:
    def test_routing_is_stable_and_partitions_cells(self):
        engine = ShardedAggregationEngine(shard_count=4)
        offers = _offers_in_distinct_shards(engine, count=3)
        for offer in offers:
            engine.apply(OfferAdded(offer.creation_time, offer))
        assert engine.dirty_shard_count == 3
        engine.commit()
        # Each offer's cell lives in exactly one shard, owner map agrees.
        for offer in offers:
            index = engine.shard_of(offer.id)
            assert engine.shards[index].cell_of(offer.id) is not None
            assert engine.offer(offer.id) == offer

    def test_merged_commit_spans_shards_and_publishes_once(self):
        hub = SubscriptionHub()
        collector = ChangeCollector()
        hub.subscribe(collector, name="all")
        engine = ShardedAggregationEngine(shard_count=4, hub=hub)
        offers = _offers_in_distinct_shards(engine, count=3)
        for offer in offers:
            engine.apply(OfferAdded(offer.creation_time, offer))
        result = engine.commit()
        # One logical commit merged from three shard commits, published once.
        assert result.committed_shards == 3
        assert len(result.dirty_cells) == 3
        assert hub.published_commits == 1
        assert len(collector.notifications) == 1
        assert collector.notifications[0].commit is result

    def test_aggregate_ids_disjoint_across_shards_and_stable(self):
        engine = ShardedAggregationEngine(shard_count=4)
        offers = []
        # Two cellmates per cell so every cell yields a true aggregate.
        for base_id, earliest in ((10, 8), (20, 16), (30, 24), (40, 32)):
            offers.append(make_offer(offer_id=base_id, earliest_start=earliest))
            offers.append(make_offer(offer_id=base_id + 1, earliest_start=earliest))
        for offer in offers:
            engine.apply(OfferAdded(offer.creation_time, offer))
        engine.commit()
        aggregates = [offer for offer in engine.aggregated_offers() if offer.is_aggregate]
        ids = [aggregate.id for aggregate in aggregates]
        assert len(ids) == len(set(ids))
        # Ids are congruent to their shard index — the collision-free invariant.
        for aggregate in aggregates:
            members = engine.constituents_of(aggregate.id)
            assert members, "congruence lookup must find the owning shard"
            owner = engine.shard_of(members[0].id)
            assert aggregate.id % engine.shard_count == owner
        # Re-touching a cell keeps its aggregate id (stability across commits).
        victim = offers[0]
        engine.apply(
            OfferUpdated(victim.creation_time, make_offer(offer_id=victim.id, earliest_start=8))
        )
        engine.commit()
        after = {o.id for o in engine.aggregated_offers() if o.is_aggregate}
        assert after == set(ids)

    def test_cross_shard_migration_reported_as_changed_not_removed(self):
        from repro.aggregation.grouping import group_key

        engine = ShardedAggregationEngine(shard_count=4)
        mover = make_offer(offer_id=1, earliest_start=8)
        engine.apply(OfferAdded(mover.creation_time, mover))
        engine.commit()
        source = engine.shard_of(mover.id)
        # Find an *empty* cell owned by a different shard: the offer stays a
        # singleton output there, so it migrates instead of being folded away.
        earliest = mover.earliest_start_slot
        while True:
            earliest += engine.parameters.est_tolerance_slots
            moved = make_offer(offer_id=mover.id, earliest_start=earliest)
            if shard_of_cell(group_key(moved, engine.parameters), engine.shard_count) != source:
                break
        engine.apply(OfferUpdated(mover.creation_time, moved))
        result = engine.commit()
        assert engine.shard_of(mover.id) != source
        # The old shard dropped it, the new shard re-emitted it: the merged
        # commit reports it changed, never removed — it is still live.
        assert mover.id in {offer.id for offer in result.changed}
        assert mover.id not in {offer.id for offer in result.removed}
        assert len(engine.shards[source]) == 0
        assert_batch_equivalent(engine)

    def test_withdrawal_emptying_a_shard_delivers_removal(self):
        hub = SubscriptionHub()
        collector = ChangeCollector()
        hub.subscribe(collector, name="all")
        engine = ShardedAggregationEngine(shard_count=4, hub=hub)
        offers = _offers_in_distinct_shards(engine, count=2)
        for offer in offers:
            engine.apply(OfferAdded(offer.creation_time, offer))
        engine.commit()
        lonely = offers[0]
        index = engine.shard_of(lonely.id)
        engine.apply(OfferWithdrawn(lonely.creation_time, lonely.id))
        engine.commit()
        # The shard is now empty and the subscriber dropped the output.
        assert len(engine.shards[index]) == 0
        assert engine.shards[index].cell_count == 0
        assert lonely.id not in collector.offers
        assert hub.published_commits == 2

    def test_parallel_and_inline_commits_agree(self):
        scenario = generate_scenario(ScenarioConfig(prosumer_count=30, seed=13))
        inline = ShardedAggregationEngine(shard_count=4, parallel=False)
        threaded = ShardedAggregationEngine(shard_count=4, parallel=True, parallel_min_cells=0)
        for engine in (inline, threaded):
            for offer in scenario.offers_in_arrival_order():
                engine.apply(OfferAdded(offer.creation_time, offer))
            engine.commit()
        assert inline.aggregated_offers() == threaded.aggregated_offers()
        assert_batch_equivalent(threaded)
        threaded.close()

    def test_input_ids_fence_every_shards_allocator(self):
        from repro.aggregation.grouping import group_key

        engine = ShardedAggregationEngine(shard_count=4, id_offset=1_000_000)
        # A raw offer carrying a high id in one shard's congruence class but
        # whose *cell* routes to a different shard — without the cross-shard
        # fence, the congruent shard would later re-allocate that id.
        offer_id, earliest = 1_000_001, 8
        while True:
            probe = make_offer(offer_id=offer_id, earliest_start=earliest)
            if shard_of_cell(group_key(probe, engine.parameters), 4) != offer_id % 4:
                break
            offer_id += 1
        engine.apply(OfferAdded(probe.creation_time, probe))
        # Force the congruent shard to allocate an aggregate id.
        congruent, earliest = offer_id % 4, 8
        while True:
            mate_a = make_offer(offer_id=1, earliest_start=earliest)
            if shard_of_cell(group_key(mate_a, engine.parameters), 4) == congruent:
                break
            earliest += engine.parameters.est_tolerance_slots
        mate_b = make_offer(offer_id=2, earliest_start=earliest)
        for offer in (mate_a, mate_b):
            engine.apply(OfferAdded(offer.creation_time, offer))
        engine.commit()
        outputs = engine.aggregated_offers()
        assert len({o.id for o in outputs}) == len(outputs)
        (aggregate,) = [o for o in outputs if o.is_aggregate]
        assert aggregate.id > offer_id

    def test_duplicate_and_unknown_ids_rejected(self):
        engine = ShardedAggregationEngine(shard_count=4)
        offer = make_offer(offer_id=5)
        engine.apply(OfferAdded(offer.creation_time, offer))
        with pytest.raises(LiveEngineError):
            engine.apply(OfferAdded(offer.creation_time, offer))
        with pytest.raises(LiveEngineError):
            engine.apply(OfferWithdrawn(offer.creation_time, 999))
        with pytest.raises(LiveEngineError):
            engine.apply(OfferUpdated(offer.creation_time, make_offer(offer_id=999)))


class TestAsyncCommitEngine:
    def test_worker_commits_and_flush_is_a_barrier(self):
        engine = AsyncCommitEngine(LiveAggregationEngine(), drain_batch=4)
        offers = [make_offer(offer_id=i, earliest_start=8 * i) for i in range(1, 9)]
        for offer in offers:
            assert engine.apply(OfferAdded(offer.creation_time, offer)) is None
        engine.flush()
        assert len(engine) == len(offers)
        assert not engine.has_pending_changes
        assert engine.commit_count >= 1
        assert_batch_equivalent(engine)
        engine.close()

    def test_callbacks_fire_once_per_logical_commit(self):
        hub = SubscriptionHub()
        collector = ChangeCollector()
        hub.subscribe(collector, name="all")
        inner = ShardedAggregationEngine(shard_count=4, hub=hub)
        engine = AsyncCommitEngine(inner, drain_batch=1024)
        offers = _offers_in_distinct_shards(inner, count=3)
        for offer in offers:
            engine.apply(OfferAdded(offer.creation_time, offer))
        engine.flush()
        # The worker drains eagerly, so the burst may split into a few logical
        # commits — but notifications match logical commits one-to-one, never
        # one per shard.
        assert hub.published_commits == len(engine.drain_commits()) >= 1
        assert len(collector.notifications) <= hub.published_commits
        assert set(collector.offers) == {offer.id for offer in offers}
        engine.close()

    def test_close_drains_the_queue(self):
        engine = AsyncCommitEngine(LiveAggregationEngine(), queue_size=2)
        offers = [make_offer(offer_id=i, earliest_start=8 * i) for i in range(1, 6)]
        for offer in offers:
            engine.apply(OfferAdded(offer.creation_time, offer))  # backpressures
        engine.close()
        assert len(engine) == len(offers)
        with pytest.raises(LiveEngineError):
            engine.apply(OfferWithdrawn(offers[0].creation_time, offers[0].id))

    def test_worker_error_poisons_the_engine(self):
        engine = AsyncCommitEngine(LiveAggregationEngine())
        offer = make_offer(offer_id=1)
        engine.apply(OfferAdded(offer.creation_time, offer))
        engine.apply(OfferAdded(offer.creation_time, offer))  # duplicate: worker fails
        with pytest.raises(LiveEngineError):
            engine.flush()
        with pytest.raises(LiveEngineError):
            engine.flush()  # stays poisoned

    def test_micro_batching_inner_rejected(self):
        with pytest.raises(LiveEngineError):
            AsyncCommitEngine(LiveAggregationEngine(micro_batch_size=8))

    def test_replay_mirrors_an_explicit_warehouse(self):
        """A warehouse passed alongside a bare async engine is kept in sync."""
        from repro.aggregation.parameters import AggregationParameters
        from repro.live.replay import replay, scenario_event_stream
        from repro.live.warehouse import LiveWarehouse
        from repro.warehouse.loader import load_scenario

        scenario = generate_scenario(ScenarioConfig(prosumer_count=15, seed=9))
        engine = AsyncCommitEngine(ShardedAggregationEngine(), drain_batch=16)
        warehouse = LiveWarehouse(
            load_scenario(scenario.replace_offers([])),
            scenario.grid,
            AggregationParameters(),
        )
        log = scenario_event_stream(scenario, withdraw_fraction=0.2, seed=2)
        report = replay(log, engine, warehouse=warehouse)
        assert report.commit_count >= 1
        assert warehouse.offer_count() == len(engine.offers())
        aggregates = [o for o in engine.aggregated_offers() if o.is_aggregate]
        assert warehouse.aggregate_count() == len(aggregates)
        engine.close()


def test_session_close_releases_engine_workers():
    """Closing the session stops the async worker; the context form does too."""
    scenario = generate_scenario(ScenarioConfig(prosumer_count=10, seed=3))
    with FlexSession(scenario, engine="async") as session:
        assert session.offers().count() > 0
        inner = session.engine.engine
    assert inner.closed
    with pytest.raises(LiveEngineError):
        inner.apply(OfferWithdrawn(scenario.flex_offers[0].creation_time, 1))


def _capital_pairs(parameters, shard_count, cells=3):
    """Pairs of Capital offers in ``cells`` distinct cells on distinct shards.

    Two cellmates per cell keep every cell's aggregate pure Capital, so a
    ``region="Capital"`` spec stays interested in all of them.
    """
    from repro.aggregation.grouping import group_key

    offers, seen, offer_id, earliest = [], set(), 101, 8
    while len(seen) < cells:
        probe = make_offer(offer_id=offer_id, earliest_start=earliest)
        shard = shard_of_cell(group_key(probe, parameters), shard_count)
        if shard not in seen:
            seen.add(shard)
            offers.append(probe)
            offers.append(make_offer(offer_id=offer_id + 1, earliest_start=earliest + 1))
        offer_id += 2
        earliest += parameters.est_tolerance_slots
    return offers


class TestSessionDelivery:
    """Spec-filtered subscriptions through the sharded/async session backends."""

    def _session(self, engine):
        from repro.aggregation.parameters import AggregationParameters

        scenario = generate_scenario(ScenarioConfig(prosumer_count=5, seed=3))
        offers = _capital_pairs(AggregationParameters(), shard_count=8)
        return FlexSession(scenario.replace_offers(offers), engine=engine), offers

    def test_sharded_commit_touching_many_shards_notifies_once(self):
        from dataclasses import replace

        session, offers = self._session("sharded")
        collector = ChangeCollector()
        session.subscribe(session.offers().where(region="Capital").spec, collector)
        # Revise one offer in every cell: three shards turn dirty at once.
        for offer in offers[::2]:
            session.ingest(OfferUpdated(offer.creation_time, replace(offer, price_per_kwh=9.0)))
        result = session.commit()
        # One logical commit merged from three shard commits → ONE callback
        # carrying the merged dirty-cell set, not one callback per shard.
        assert result.committed_shards == 3
        assert len(collector.notifications) == 1
        notification = collector.notifications[0]
        assert notification.commit is result
        assert len(notification.commit.dirty_cells) == 3
        changed_aggregates = [offer for offer in notification.changed if offer.is_aggregate]
        assert len(changed_aggregates) == 3
        assert all(offer.region == "Capital" for offer in changed_aggregates)

    @pytest.mark.parametrize("engine", ("sharded", "async"))
    def test_withdrawals_emptying_shards_deliver_removals(self, engine):
        session, offers = self._session(engine)
        backend = session.engine
        collector = ChangeCollector()
        session.subscribe(session.offers().where(region="Capital").spec, collector)
        # Prime the mirror: a price revision hands the subscriber every aggregate.
        from dataclasses import replace

        for offer in offers[::2]:
            session.ingest(OfferUpdated(offer.creation_time, replace(offer, price_per_kwh=9.0)))
        session.commit()
        assert len(collector.offers) == 3
        published_before = backend.hub.published_commits
        # Withdraw everything: every cell (and its whole shard) empties.
        for offer in offers:
            session.ingest(OfferWithdrawn(offer.creation_time, offer.id))
        session.commit()
        backend.refresh()
        published = backend.hub.published_commits - published_before
        # Logical commits, not per-shard ones: the synchronous sharded backend
        # publishes exactly one; the async worker may split the burst, but
        # callbacks still match logical commits one-to-one.
        if engine == "sharded":
            assert published == 1
            assert len(collector.notifications) == 2
        assert 1 <= published <= len(offers)
        # Every mirrored aggregate was delivered back as a removal.
        assert collector.offers == {}
        assert backend.engine.aggregated_offers() == []
        assert session.query(QuerySpec.build(region="Capital")).offers == []

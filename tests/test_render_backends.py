"""Tests for the SVG and ASCII backends, axes and incremental rendering."""

from __future__ import annotations

import pytest

from repro.errors import RenderError
from repro.render.ascii_backend import AsciiCanvas, render_ascii
from repro.render.axes import PlotArea, legend, time_axis, value_axis
from repro.render.color import Palette
from repro.render.incremental import IncrementalRenderer, monolithic_render_time, time_to_first_chunk
from repro.render.scales import LinearScale, SlotTimeScale
from repro.render.scene import Circle, Group, Line, Polygon, Polyline, Rect, Scene, Style, Text, Wedge
from repro.render.svg import render_svg, save_svg


@pytest.fixture
def sample_scene(grid):
    scene = Scene(width=400, height=200, title="sample", background=Palette.PANEL)
    area = PlotArea(left=40, top=20, width=340, height=140)
    time_scale = SlotTimeScale.build(grid, 0, 96, area.left, area.right)
    value_scale = LinearScale.nice(0, 10, area.bottom, area.top)
    scene.add(time_axis(area, time_scale))
    scene.add(value_axis(area, value_scale, label="energy", unit="kWh"))
    marks = Group(name="marks")
    scene.add(marks)
    for index in range(10):
        marks.add(
            Rect(
                x=50 + index * 30,
                y=40 + (index % 3) * 30,
                width=25,
                height=18,
                style=Style(fill=Palette.FLEX_OFFER, stroke=Palette.AXIS),
                element_id=f"fo:{index}",
                tooltip=f"offer {index}",
            )
        )
    marks.add(Line(x1=50, y1=150, x2=350, y2=150, style=Style(stroke=Palette.SCHEDULE, dashed=True)))
    marks.add(Polyline(points=((50, 60), (120, 90), (200, 40)), style=Style(stroke=Palette.RES_PRODUCTION)))
    marks.add(Polygon(points=((300, 100), (320, 120), (280, 120)), style=Style(fill=Palette.ENERGY_BAND)))
    marks.add(Circle(cx=330, cy=60, radius=8, style=Style(fill=Palette.STATE_ACCEPTED)))
    marks.add(Wedge(cx=330, cy=120, radius=12, start_angle=0, end_angle=120, style=Style(fill=Palette.STATE_REJECTED)))
    marks.add(Text(x=200, y=15, text="caption", anchor="middle", style=Style(fill=Palette.AXIS)))
    scene.add(legend(area, [("offer", Palette.FLEX_OFFER)]))
    return scene


class TestSvgBackend:
    def test_document_structure(self, sample_scene):
        svg = render_svg(sample_scene)
        assert svg.startswith("<?xml")
        assert "<svg" in svg and svg.rstrip().endswith("</svg>")
        assert 'width="400"' in svg and 'height="200"' in svg

    def test_title_and_background_emitted(self, sample_scene):
        svg = render_svg(sample_scene)
        assert "<title>sample</title>" in svg
        assert Palette.PANEL.to_hex() in svg

    def test_all_primitive_tags_present(self, sample_scene):
        svg = render_svg(sample_scene)
        for tag in ("<rect", "<line", "<polyline", "<polygon", "<circle", "<path", "<text"):
            assert tag in svg

    def test_element_ids_become_data_attributes(self, sample_scene):
        svg = render_svg(sample_scene)
        assert 'data-element="fo:0"' in svg

    def test_tooltips_become_title_elements(self, sample_scene):
        svg = render_svg(sample_scene)
        assert "<title>offer 3</title>" in svg

    def test_dashed_style(self, sample_scene):
        assert "stroke-dasharray" in render_svg(sample_scene)

    def test_text_is_escaped(self):
        scene = Scene(width=50, height=50)
        scene.add(Text(x=0, y=10, text="a < b & c"))
        svg = render_svg(scene)
        assert "a &lt; b &amp; c" in svg

    def test_save_svg(self, sample_scene, tmp_path):
        path = save_svg(sample_scene, str(tmp_path / "scene.svg"))
        assert (tmp_path / "scene.svg").read_text().startswith("<?xml")
        assert path.endswith("scene.svg")

    def test_deterministic_output(self, sample_scene):
        assert render_svg(sample_scene) == render_svg(sample_scene)


class TestAsciiBackend:
    def test_canvas_dimensions_validated(self):
        with pytest.raises(RenderError):
            AsciiCanvas(0, 10)

    def test_canvas_put_ignores_out_of_range(self):
        canvas = AsciiCanvas(5, 5)
        canvas.put(99, 99, "x")  # must not raise
        assert "x" not in canvas.to_string()

    def test_draw_rect_outline(self):
        canvas = AsciiCanvas(10, 6)
        canvas.draw_rect(1, 1, 6, 4, fill=".", border="#")
        text = canvas.to_string()
        assert "#" in text and "." in text

    def test_draw_text(self):
        canvas = AsciiCanvas(20, 3)
        canvas.draw_text(2, 1, "hello")
        assert "hello" in canvas.to_string()

    def test_render_scene_to_ascii(self, sample_scene):
        art = render_ascii(sample_scene, columns=80)
        lines = art.splitlines()
        assert len(lines) > 5
        assert any("#" in line for line in lines)
        assert any("caption" in line for line in lines)

    def test_width_respected(self, sample_scene):
        art = render_ascii(sample_scene, columns=60)
        assert all(len(line) <= 60 for line in art.splitlines())


class TestAxes:
    def test_time_axis_has_ticks_and_labels(self, grid):
        area = PlotArea(left=40, top=20, width=300, height=100)
        scale = SlotTimeScale.build(grid, 0, 96, area.left, area.right)
        group = time_axis(area, scale)
        texts = [node for node in group.walk() if isinstance(node, Text)]
        lines = [node for node in group.walk() if isinstance(node, Line)]
        assert len(texts) >= 3
        assert len(lines) >= 3

    def test_value_axis_label_mentions_unit(self, grid):
        area = PlotArea(left=40, top=20, width=300, height=100)
        scale = LinearScale.nice(0, 25, area.bottom, area.top)
        group = value_axis(area, scale, label="energy", unit="kWh")
        labels = [node.text for node in group.walk() if isinstance(node, Text)]
        assert any("kWh" in label for label in labels)

    def test_legend_entries(self, grid):
        area = PlotArea(left=0, top=0, width=200, height=100)
        group = legend(area, [("a", Palette.FLEX_OFFER), ("b", Palette.SCHEDULE)])
        labels = [node.text for node in group.walk() if isinstance(node, Text)]
        assert labels == ["a", "b"]


class TestIncrementalRendering:
    def test_chunks_cover_all_marks(self, sample_scene):
        renderer = IncrementalRenderer(chunk_size=4)
        chunks = list(renderer.render(sample_scene))
        assert chunks[-1].complete
        assert chunks[-1].nodes_rendered == chunks[-1].nodes_total
        assert sum(1 for _ in chunks) == -(-chunks[-1].nodes_total // 4)

    def test_progress_is_monotonic(self, sample_scene):
        chunks = list(IncrementalRenderer(chunk_size=3).render(sample_scene))
        rendered = [chunk.nodes_rendered for chunk in chunks]
        assert rendered == sorted(rendered)

    def test_documents_grow(self, sample_scene):
        chunks = list(IncrementalRenderer(chunk_size=5, emit_documents=True).render(sample_scene))
        sizes = [len(chunk.document) for chunk in chunks]
        assert sizes == sorted(sizes)
        assert all("<svg" in chunk.document for chunk in chunks)

    def test_empty_scene_yields_single_chunk(self):
        scene = Scene(width=10, height=10)
        chunks = list(IncrementalRenderer().render(scene))
        assert len(chunks) == 1
        assert chunks[0].complete

    def test_invalid_chunk_size(self):
        with pytest.raises(RenderError):
            IncrementalRenderer(chunk_size=0)

    def test_first_chunk_faster_than_full_render(self, scenario):
        """CLAIM-4: the first incremental chunk is available before a full monolithic render."""
        from repro.views.basic import BasicView

        view = BasicView(scenario.flex_offers, scenario.grid)
        scene = view.scene()
        first = time_to_first_chunk(scene, chunk_size=10)
        full = monolithic_render_time(scene)
        assert first < full * 1.5 + 0.05  # generous bound: first chunk must not cost more than a full render

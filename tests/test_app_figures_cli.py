"""Tests for the figure regeneration functions and the flexviz CLI."""

from __future__ import annotations

import json

import pytest

from repro.app.cli import main
from repro.app.figures import (
    FIGURE_BUILDERS,
    figure_1,
    figure_2,
    figure_5,
    figure_6,
    figure_8,
    figure_10,
    figure_11,
    generate_all_figures,
)
from repro.datagen.scenarios import ScenarioConfig, generate_scenario


@pytest.fixture(scope="module")
def figure_scenario():
    return generate_scenario(ScenarioConfig(prosumer_count=50, seed=19))


class TestFigures:
    def test_registry_covers_all_eleven_figures(self):
        assert len(FIGURE_BUILDERS) == 11

    def test_generate_all_figures(self, figure_scenario, tmp_path):
        artifacts = generate_all_figures(figure_scenario, directory=str(tmp_path))
        # Figure 1 yields two artefacts (before/after), so 12 in total.
        assert len(artifacts) == 12
        assert len(list(tmp_path.glob("*.svg"))) == 12
        assert all(artifact.svg.startswith("<?xml") for artifact in artifacts)

    def test_figure_1_balancing_improves_overlap(self, figure_scenario):
        before, after = figure_1(figure_scenario)
        assert after.summary["overlap_with_res_surplus_kwh"] >= before.summary["overlap_with_res_surplus_kwh"]

    def test_figure_2_structural_elements(self, figure_scenario):
        artifact = figure_2(figure_scenario)
        assert artifact.summary["time_flexibility_slots"] >= 4
        assert artifact.summary["scheduled_energy"] > 0
        assert any("start window" in line for line in artifact.summary["detail_lines"])

    def test_figure_5_pivot_rows_are_prosumer_types(self, figure_scenario):
        artifact = figure_5(figure_scenario)
        assert set(artifact.summary["row_members"]) <= {
            "household",
            "commercial",
            "small_industry",
            "power_plant",
        }

    def test_figure_6_percentages(self, figure_scenario):
        artifact = figure_6(figure_scenario)
        total = sum(artifact.summary["state_percentages"].values())
        assert total == pytest.approx(100.0) or total == 0.0

    def test_figure_8_selection_and_lanes(self, figure_scenario):
        artifact = figure_8(figure_scenario)
        assert artifact.summary["offer_count"] == len(figure_scenario.flex_offers)
        assert artifact.summary["lane_count"] > 0
        assert artifact.summary["selected_by_rectangle"] >= 0

    def test_figure_10_provenance(self, figure_scenario):
        artifact = figure_10(figure_scenario)
        assert artifact.summary["is_aggregate"]
        assert len(artifact.summary["constituents"]) >= 2

    def test_figure_11_reduction(self, figure_scenario):
        artifact = figure_11(figure_scenario)
        assert artifact.summary["reduction_ratio"] >= 1.0
        ratios = [point["reduction_ratio"] for point in artifact.summary["sweep"]]
        assert ratios == sorted(ratios)

    def test_artifact_save(self, figure_scenario, tmp_path):
        artifact = figure_2(figure_scenario)
        path = artifact.save(str(tmp_path))
        assert path.endswith("figure_02_structure.svg")


class TestCli:
    def test_render_basic_view(self, tmp_path, capsys):
        out = tmp_path / "basic.svg"
        assert main(["--prosumers", "25", "--seed", "3", "render", "--view", "basic", "--out", str(out)]) == 0
        assert out.read_text().startswith("<?xml")
        assert "basic" in capsys.readouterr().out

    def test_render_ascii(self, capsys):
        assert main(["--prosumers", "15", "render", "--view", "dashboard", "--ascii"]) == 0
        assert capsys.readouterr().out.strip()

    def test_warehouse_export(self, tmp_path, capsys):
        assert main(["--prosumers", "15", "warehouse", "--out", str(tmp_path / "dw")]) == 0
        assert (tmp_path / "dw" / "fact_flexoffer.csv").exists()

    def test_plan_command(self, capsys):
        assert main(["--prosumers", "20", "plan"]) == 0
        out = capsys.readouterr().out
        assert "greedy" in out and "imbalance cost" in out

    def test_mdx_command(self, capsys):
        query = (
            "SELECT {[Measures].[flex_offer_count]} ON COLUMNS, "
            "{[State].[state].Members} ON ROWS FROM [FlexOffers]"
        )
        assert main(["--prosumers", "20", "mdx", query]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["columns"] == ["flex_offer_count"]
        assert payload["rows"]

    def test_live_command(self, capsys):
        assert main(["--prosumers", "15", "live", "--batch-size", "16", "--with-warehouse"]) == 0
        out = capsys.readouterr().out
        assert "commit latency" in out and "warehouse facts" in out

    def test_live_command_rejects_negative_batch_size(self, capsys):
        assert main(["--prosumers", "15", "live", "--batch-size", "-1"]) == 2
        assert "--batch-size" in capsys.readouterr().err

    def test_figures_command(self, tmp_path, capsys):
        assert main(["--prosumers", "20", "figures", "--out", str(tmp_path / "figs")]) == 0
        assert len(list((tmp_path / "figs").glob("*.svg"))) == 12
        assert "wrote 12 figures" in capsys.readouterr().out

    def test_checkpoint_restore_round_trip(self, tmp_path, capsys):
        out = str(tmp_path / "ckpt")
        argv = ["--prosumers", "15", "--seed", "4", "checkpoint", "--out", out]
        assert main([*argv, "--tail", "0.2", "--segment-size", "32", "--compact"]) == 0
        assert "wrote checkpoint" in capsys.readouterr().out
        assert main(["restore", "--from", out, "--smoke"]) == 0
        assert "restore smoke OK" in capsys.readouterr().out

    def test_checkpoint_refuses_reused_directory(self, tmp_path, capsys):
        out = str(tmp_path / "ckpt")
        argv = ["--prosumers", "15", "--seed", "4", "checkpoint", "--out", out]
        assert main(argv) == 0
        capsys.readouterr()
        # A second stream appended to the old log with a restarted offset
        # would be unrestorable; the CLI must refuse the reused directory.
        assert main(argv) == 2
        assert "already holds" in capsys.readouterr().err

    def test_restore_reports_missing_checkpoint(self, tmp_path, capsys):
        assert main(["restore", "--from", str(tmp_path / "nothing")]) == 1
        assert "restore failed" in capsys.readouterr().err

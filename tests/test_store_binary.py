"""Property tests for the binary columnar checkpoint format.

The contract: a checkpoint written in the binary columnar format and read
back (memmapped or eager, with or without numpy) is **value-identical** to
the same checkpoint written in the CSV text format — for any warehouse the
engines can produce, at any commit point, for every live-family engine.
Old-format checkpoints (manifests predating ``warehouse_format``) must keep
restoring through the text readers.

Every test in this module is datagen-free: offers are built by hand through
``tests.conftest.make_offer`` and streamed through the real engines, so the
whole module also runs in the no-numpy CI leg (where the generated-scenario
suites skip).
"""

from __future__ import annotations

import datetime
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregation.parameters import AggregationParameters
from repro.errors import StoreError
from repro.live.asynccommit import AsyncCommitEngine
from repro.flexoffer.model import FlexOfferState, Schedule
from repro.live.engine import LiveAggregationEngine
from repro.live.events import EventLog, OfferAdded, OfferStateChanged, OfferUpdated, OfferWithdrawn
from repro.live.replay import replay
from repro.live.sharded import ShardedAggregationEngine
from repro.live.warehouse import LiveWarehouse
from repro.store import SnapshotStore, capture_engine_state
from repro.store.columnar import load_schema_columnar, read_table, save_schema_columnar, write_table
from repro.timeseries.grid import TimeGrid
from repro.warehouse.persistence import load_schema, save_schema
from repro.warehouse.schema import StarSchema

from tests.conftest import make_offer

GRID = TimeGrid()

ENGINE_FACTORIES = {
    "live": lambda: LiveAggregationEngine(AggregationParameters()),
    "sharded": lambda: ShardedAggregationEngine(
        AggregationParameters(), shard_count=3, parallel=False
    ),
    "async": lambda: AsyncCommitEngine(
        ShardedAggregationEngine(AggregationParameters(), shard_count=2), drain_batch=5
    ),
}


def _event_stream(offer_count: int) -> list:
    """A hand-built lifecycle stream: adds, revisions, decisions, withdrawals."""
    log = EventLog()
    regions = ["Capital", "Zealand", "North Jutland"]
    for index in range(offer_count):
        offer = make_offer(
            offer_id=index + 1,
            earliest_start=30 + 3 * index,
            time_flexibility=4 + index % 5,
            region=regions[index % 3],
            prosumer_id=index % 5 + 1,
            appliance_type=["electric_vehicle", "heat_pump", "dishwasher"][index % 3],
        )
        log.append(OfferAdded(offer.creation_time, offer))
        if index % 4 == 1:
            widened = make_offer(
                offer_id=offer.id,
                earliest_start=offer.earliest_start_slot,
                time_flexibility=offer.time_flexibility_slots + 1,
                region=regions[index % 3],
                prosumer_id=index % 5 + 1,
            )
            log.append(OfferUpdated(offer.creation_time + datetime.timedelta(minutes=30), widened))
        if index % 3 == 0:
            log.append(
                OfferStateChanged(offer.acceptance_deadline, offer.id, FlexOfferState.ACCEPTED)
            )
            log.append(
                OfferStateChanged(
                    offer.assignment_deadline,
                    offer.id,
                    FlexOfferState.ASSIGNED,
                    Schedule(
                        start_slot=offer.earliest_start_slot + 1,
                        energy_per_slice=tuple(p.min_energy for p in offer.profile),
                    ),
                )
            )
        elif index % 7 == 2:
            log.append(OfferWithdrawn(offer.assignment_deadline, offer.id))
    return log.replay_order()


def _warehouse_after(events, engine_name: str) -> tuple[LiveWarehouse, object]:
    engine = ENGINE_FACTORIES[engine_name]()
    warehouse = LiveWarehouse(StarSchema.empty(), GRID, AggregationParameters())
    replay(events, engine, warehouse=warehouse)
    return warehouse, engine


def _schema_tables(schema: StarSchema) -> dict[str, list[dict]]:
    return {name: list(table.rows()) for name, table in schema.tables.items()}


def _assert_schemas_identical(left: StarSchema, right: StarSchema) -> None:
    left_tables, right_tables = _schema_tables(left), _schema_tables(right)
    assert sorted(left_tables) == sorted(right_tables)
    for name, rows in left_tables.items():
        assert rows == right_tables[name], f"table {name} diverged"


@pytest.mark.parametrize("engine_name", sorted(ENGINE_FACTORIES))
@given(cut_fraction=st.floats(min_value=0.1, max_value=1.0))
@settings(deadline=None, max_examples=8)
def test_columnar_restore_identical_to_csv_restore(tmp_path_factory, engine_name, cut_fraction):
    """Both formats restore the same warehouse at any commit point."""
    events = _event_stream(14)
    cut = max(1, int(len(events) * cut_fraction))
    warehouse, engine = _warehouse_after(events[:cut], engine_name)
    state = capture_engine_state(getattr(engine, "engine", engine))

    base = tmp_path_factory.mktemp("fmt")
    csv_store = SnapshotStore(base / "csv", warehouse_format="csv")
    bin_store = SnapshotStore(base / "bin", warehouse_format="columnar")
    csv_store.save(state, log_offset=cut, schema=warehouse.schema)
    bin_store.save(state, log_offset=cut, schema=warehouse.schema)

    from_csv = csv_store.load()
    from_bin = bin_store.load()
    assert from_bin.manifest["warehouse_format"] == "columnar"
    assert from_csv.log_offset == from_bin.log_offset == cut
    assert from_csv.state == from_bin.state
    assert from_bin.schema is not None
    _assert_schemas_identical(from_csv.schema, from_bin.schema)
    # Both restores must also equal the warehouse that was checkpointed.
    _assert_schemas_identical(warehouse.schema, from_bin.schema)


def test_old_format_checkpoint_still_restores(tmp_path):
    """A manifest without ``warehouse_format`` reads through the CSV path."""
    events = _event_stream(8)
    warehouse, engine = _warehouse_after(events, "live")
    state = capture_engine_state(engine)
    store = SnapshotStore(tmp_path, warehouse_format="csv")
    store.save(state, log_offset=len(events), schema=warehouse.schema)

    # Simulate a checkpoint written before the columnar format existed.
    manifest_path = tmp_path / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    del manifest["warehouse_format"]
    manifest_path.write_text(json.dumps(manifest))

    checkpoint = SnapshotStore(tmp_path).load()
    assert checkpoint.schema is not None
    _assert_schemas_identical(warehouse.schema, checkpoint.schema)


def test_unknown_warehouse_format_is_rejected(tmp_path):
    store = SnapshotStore(tmp_path, warehouse_format="csv")
    warehouse, engine = _warehouse_after(_event_stream(3), "live")
    store.save(capture_engine_state(engine), log_offset=1, schema=warehouse.schema)
    manifest_path = tmp_path / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["warehouse_format"] = "parquet"
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(StoreError):
        SnapshotStore(tmp_path).load()

    with pytest.raises(StoreError):
        SnapshotStore(tmp_path / "new", warehouse_format="parquet")


def test_memmap_and_eager_reads_are_identical(tmp_path):
    warehouse, _ = _warehouse_after(_event_stream(10), "live")
    for name, table in warehouse.schema.tables.items():
        if len(table) == 0:
            continue
        path = tmp_path / f"{name}.fcb"
        write_table(table, path)
        name_mm, rows_mm, data_mm = read_table(path, memmap=True)
        name_eager, rows_eager, data_eager = read_table(path, memmap=False)
        assert (name_mm, rows_mm) == (name_eager, rows_eager)
        assert sorted(data_mm) == sorted(data_eager)
        for column in data_mm:
            assert list(data_mm[column]) == list(data_eager[column])


def test_awkward_values_round_trip(tmp_path):
    """Cells CSV needs to escape: empty strings, None, unicode, newlines.

    Both writers run over the same production schema table, so the assertion
    compares the real restore paths, not synthetic ones.
    """
    schema = StarSchema.empty()
    fact = schema.table("fact_flexoffer")
    stamp = datetime.datetime(2012, 2, 1, 13, 45)
    base = {column: None for column in fact.columns}
    awkward_rows = [
        {
            **base,
            "offer_id": 1,
            "group_cell": "køb;en\nhavn",
            "payload": '{"quote": "d\\"x", "comma": "a,b"}',
            "creation_time": stamp,
            "scheduled_start_slot": None,
            "min_total_energy": 0.5,
            "is_aggregate": False,
        },
        {
            **base,
            "offer_id": 2,
            "group_cell": "",
            "payload": "",
            "creation_time": None,
            "scheduled_start_slot": 7,
            "min_total_energy": 1e-9,
            "is_aggregate": True,
        },
    ]
    for row in awkward_rows:
        fact.append(dict(row))

    csv_dir, bin_dir = tmp_path / "csv", tmp_path / "bin"
    save_schema(schema, csv_dir)
    save_schema_columnar(schema, bin_dir)
    via_csv = load_schema(csv_dir).table("fact_flexoffer")
    via_bin = load_schema_columnar(bin_dir).table("fact_flexoffer")
    assert list(via_bin.rows()) == list(via_csv.rows())


def test_segment_sidecar_survives_checkpoint_cycle(tmp_path):
    """End-to-end: record → checkpoint → tail read uses the seek index."""
    from repro.store.segments import SegmentStore

    events = _event_stream(12)
    log = SegmentStore(tmp_path / "events", segment_size=8)
    log.extend(events)
    for segment in log.segments():
        assert segment.with_name(segment.name + ".idx").exists()
    tail = list(log.tail(len(events) // 2))
    assert len(tail) == len(events) - len(events) // 2

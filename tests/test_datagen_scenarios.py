"""Tests for end-to-end scenario generation."""

from __future__ import annotations

import pytest

from repro.datagen.scenarios import ScenarioConfig, generate_scenario, scenario_with_offer_count, small_scenario
from repro.flexoffer.model import FlexOfferState, count_by_state


class TestScenarioGeneration:
    def test_scenario_has_all_parts(self, scenario):
        assert scenario.prosumers
        assert scenario.flex_offers
        assert len(scenario.base_demand) == scenario.config.horizon_slots
        assert len(scenario.res_production) == scenario.config.horizon_slots
        assert len(scenario.spot_prices) == scenario.config.horizon_slots

    def test_offer_count_scales_with_prosumers(self):
        small = generate_scenario(ScenarioConfig(prosumer_count=20, seed=1))
        large = generate_scenario(ScenarioConfig(prosumer_count=200, seed=1))
        assert len(large.flex_offers) > len(small.flex_offers)

    def test_deterministic_given_seed(self):
        first = generate_scenario(ScenarioConfig(prosumer_count=30, seed=4))
        second = generate_scenario(ScenarioConfig(prosumer_count=30, seed=4))
        assert [o.id for o in first.flex_offers] == [o.id for o in second.flex_offers]
        assert first.base_demand.total() == pytest.approx(second.base_demand.total())

    def test_different_seed_differs(self):
        first = generate_scenario(ScenarioConfig(prosumer_count=30, seed=4))
        second = generate_scenario(ScenarioConfig(prosumer_count=30, seed=5))
        assert [o.earliest_start_slot for o in first.flex_offers] != [
            o.earliest_start_slot for o in second.flex_offers
        ]

    def test_state_mix_roughly_matches_config(self, large_scenario):
        counts = count_by_state(large_scenario.flex_offers)
        total = len(large_scenario.flex_offers)
        assigned_fraction = counts[FlexOfferState.ASSIGNED] / total
        assert 0.3 <= assigned_fraction <= 0.6

    def test_assigned_offers_have_schedules(self, scenario):
        for offer in scenario.flex_offers:
            if offer.state is FlexOfferState.ASSIGNED:
                assert offer.schedule is not None

    def test_rejected_offers_have_no_schedule(self, scenario):
        for offer in scenario.flex_offers:
            if offer.state is FlexOfferState.REJECTED:
                assert offer.schedule is None

    def test_invalid_state_fractions_rejected(self):
        config = ScenarioConfig(prosumer_count=10, accepted_fraction=0.6, assigned_fraction=0.6, rejected_fraction=0.2)
        with pytest.raises(Exception):
            generate_scenario(config)

    def test_offers_of_prosumer(self, scenario):
        prosumer = scenario.prosumers[0]
        offers = scenario.offers_of_prosumer(prosumer.id)
        assert all(offer.prosumer_id == prosumer.id for offer in offers)

    def test_replace_offers_keeps_master_data(self, scenario):
        clone = scenario.replace_offers(scenario.flex_offers[:3])
        assert len(clone.flex_offers) == 3
        assert clone.geography is scenario.geography
        assert clone.topology is scenario.topology

    def test_horizon_slots_range(self, scenario):
        assert list(scenario.horizon_slots) == list(range(scenario.config.horizon_slots))

    def test_res_capacity_scales_with_prosumer_count(self):
        small = generate_scenario(ScenarioConfig(prosumer_count=20, seed=2))
        large = generate_scenario(ScenarioConfig(prosumer_count=200, seed=2))
        assert large.res_production.total() > small.res_production.total()

    def test_small_scenario_helper(self):
        scenario = small_scenario(seed=2)
        assert scenario.config.prosumer_count == 40

    def test_scenario_with_offer_count_close_to_target(self):
        scenario = scenario_with_offer_count(300, seed=8)
        assert 150 <= len(scenario.flex_offers) <= 450

"""Tests for colours, scales, the scene graph and the pretty-ticks algorithm."""

from __future__ import annotations

import pytest

from repro.errors import RenderError
from repro.render.color import Color, Palette
from repro.render.scales import LinearScale, SlotTimeScale, nice_step, pretty_ticks
from repro.render.scene import Circle, Group, Line, Rect, Scene, Style, Text


class TestColor:
    def test_hex_roundtrip(self):
        color = Color.from_hex("#3d7ab5")
        assert color.to_hex() == "#3d7ab5"

    def test_from_hex_without_hash(self):
        assert Color.from_hex("ffffff").to_hex() == "#ffffff"

    def test_invalid_component_rejected(self):
        with pytest.raises(RenderError):
            Color(300, 0, 0)

    def test_invalid_alpha_rejected(self):
        with pytest.raises(RenderError):
            Color(0, 0, 0, alpha=2.0)

    def test_invalid_hex_rejected(self):
        with pytest.raises(RenderError):
            Color.from_hex("xyz")

    def test_with_alpha(self):
        assert Color(10, 20, 30).with_alpha(0.5).alpha == 0.5

    def test_lighten_moves_towards_white(self):
        base = Color(100, 100, 100)
        lighter = base.lighten(0.5)
        assert lighter.red > base.red

    def test_lighten_invalid_amount(self):
        with pytest.raises(RenderError):
            Color(0, 0, 0).lighten(2.0)

    def test_palette_state_colors_distinct(self):
        colors = {Palette.state_color(state).to_hex() for state in ("accepted", "assigned", "rejected")}
        assert len(colors) == 3

    def test_palette_unknown_state_falls_back(self):
        assert Palette.state_color("weird") == Palette.STATE_OFFERED

    def test_categorical_cycles(self):
        assert Palette.categorical(0) == Palette.categorical(len(Palette.CATEGORICAL))


class TestPrettyTicks:
    def test_simple_range(self):
        assert pretty_ticks(0, 10, max_ticks=6) == [0.0, 2.0, 4.0, 6.0, 8.0, 10.0]

    def test_ticks_are_nice_multiples(self):
        for low, high in [(0, 7), (3, 97), (0.1, 0.9), (-5, 5), (0, 12.5)]:
            ticks = pretty_ticks(low, high)
            steps = {round(b - a, 9) for a, b in zip(ticks, ticks[1:])}
            assert len(steps) == 1  # constant step

    def test_ticks_cover_bounds(self):
        ticks = pretty_ticks(2.3, 17.8)
        assert ticks[0] >= 2.3 - (ticks[1] - ticks[0])
        assert ticks[-1] <= 17.8 + (ticks[1] - ticks[0])

    def test_degenerate_range(self):
        ticks = pretty_ticks(5, 5)
        assert len(ticks) >= 2

    def test_max_ticks_respected(self):
        assert len(pretty_ticks(0, 1000, max_ticks=5)) <= 7

    def test_invalid_max_ticks(self):
        with pytest.raises(RenderError):
            pretty_ticks(0, 1, max_ticks=1)

    def test_nice_step_values(self):
        assert nice_step(0.9) == 1.0
        assert nice_step(1.2) == 2.0
        assert nice_step(2.2) == 2.5
        assert nice_step(3.0) == 5.0
        assert nice_step(7.0) == 10.0
        assert nice_step(23.0) == 25.0

    def test_nice_step_rejects_nonpositive(self):
        with pytest.raises(RenderError):
            nice_step(0.0)


class TestLinearScale:
    def test_projection_endpoints(self):
        scale = LinearScale(0, 10, 100, 200)
        assert scale.project(0) == 100
        assert scale.project(10) == 200
        assert scale.project(5) == 150

    def test_inverted_range(self):
        scale = LinearScale(0, 10, 200, 100)  # y axes grow downwards
        assert scale.project(0) == 200
        assert scale.project(10) == 100

    def test_invert_roundtrip(self):
        scale = LinearScale(0, 50, 0, 500)
        assert scale.invert(scale.project(37.0)) == pytest.approx(37.0)

    def test_degenerate_domain_rejected(self):
        with pytest.raises(RenderError):
            LinearScale(5, 5, 0, 100)

    def test_nice_scale_contains_data(self):
        scale = LinearScale.nice(0.3, 17.2, 0, 100)
        assert scale.domain_min <= 0.3
        assert scale.domain_max >= 17.2

    def test_ticks_inside_domain(self):
        scale = LinearScale(0, 12.5, 0, 100)
        assert all(0 <= tick <= 12.5 for tick in scale.ticks())


class TestSlotTimeScale:
    def test_projection(self, grid):
        scale = SlotTimeScale.build(grid, 0, 96, 0, 960)
        assert scale.project(0) == 0
        assert scale.project(96) == 960
        assert scale.project(48) == 480

    def test_project_time(self, grid):
        scale = SlotTimeScale.build(grid, 0, 96, 0, 960)
        noon = grid.to_datetime(48)
        assert scale.project_time(noon) == pytest.approx(480)

    def test_degenerate_span_expands(self, grid):
        scale = SlotTimeScale.build(grid, 10, 10, 0, 100)
        assert scale.project(10) == 0

    def test_tick_labels(self, grid):
        scale = SlotTimeScale.build(grid, 0, 96, 0, 960)
        assert scale.tick_label(0) == "02-01 00:00"
        assert scale.tick_label(48) == "12:00"

    def test_tick_slots_are_integers(self, grid):
        scale = SlotTimeScale.build(grid, 0, 96, 0, 960)
        assert all(isinstance(slot, int) for slot in scale.tick_slots())


class TestSceneGraph:
    def test_scene_requires_positive_dimensions(self):
        with pytest.raises(RenderError):
            Scene(width=0, height=100)

    def test_add_and_count(self):
        scene = Scene(width=100, height=100)
        group = Group(name="g")
        group.add(Rect(x=0, y=0, width=10, height=10))
        group.add(Line(x1=0, y1=0, x2=5, y2=5))
        scene.add(group)
        assert scene.count_nodes() == 3  # group + 2 children

    def test_walk_recurses(self):
        scene = Scene(width=100, height=100)
        outer = Group(name="outer")
        inner = Group(name="inner")
        inner.add(Text(x=0, y=0, text="hi"))
        outer.add(inner)
        scene.add(outer)
        assert sum(1 for _ in scene.walk()) == 3

    def test_find_by_element_id(self):
        scene = Scene(width=100, height=100)
        scene.add(Rect(x=0, y=0, width=1, height=1, element_id="fo:1"))
        scene.add(Rect(x=5, y=5, width=1, height=1, element_id="fo:2"))
        assert len(scene.find("fo:1")) == 1

    def test_hit_test_rect(self):
        scene = Scene(width=100, height=100)
        scene.add(Rect(x=10, y=10, width=20, height=20, element_id="fo:1"))
        assert [node.element_id for node in scene.hit_test(15, 15)] == ["fo:1"]
        assert scene.hit_test(50, 50) == []

    def test_hit_test_circle(self):
        scene = Scene(width=100, height=100)
        scene.add(Circle(cx=50, cy=50, radius=10, element_id="node:a"))
        assert scene.hit_test(55, 50)[0].element_id == "node:a"
        assert scene.hit_test(70, 50) == []

    def test_invalid_opacity_rejected(self):
        with pytest.raises(RenderError):
            Style(opacity=1.5)

    def test_wedge_arc_points_start_at_center(self):
        from repro.render.scene import Wedge

        wedge = Wedge(cx=10, cy=10, radius=5, start_angle=0, end_angle=90)
        points = wedge.arc_points()
        assert points[0] == (10, 10)
        assert len(points) > 10

"""Tests for the monitoring extension (alerts + platform drill-down)."""

from __future__ import annotations

import pytest

from repro.enterprise.planning import run_planning_cycle
from repro.enterprise.settlement import RealizationConfig
from repro.enterprise import PlanningConfig
from repro.monitoring.alerts import AlertKind, AlertMonitor, AlertSeverity, AlertThresholds
from repro.monitoring.platform import MonitoringPlatform
from repro.timeseries.series import TimeSeries
from tests.conftest import make_offer


@pytest.fixture
def monitor(grid):
    return AlertMonitor(grid, AlertThresholds(minimum_slot_imbalance_kwh=1.0, minimum_window_slots=2))


class TestShortageAlerts:
    def test_no_alert_when_res_covers_demand(self, monitor, grid):
        demand = TimeSeries(grid, 0, [5.0] * 24)
        res = TimeSeries(grid, 0, [10.0] * 24)
        assert monitor.shortage_alerts(demand, res, []) == []

    def test_alert_for_persistent_deficit(self, monitor, grid):
        demand = TimeSeries(grid, 0, [10.0] * 24)
        res = TimeSeries(grid, 0, [10.0] * 8 + [2.0] * 8 + [10.0] * 8)
        alerts = monitor.shortage_alerts(demand, res, [])
        assert len(alerts) == 1
        alert = alerts[0]
        assert alert.kind is AlertKind.SHORTAGE
        assert alert.first_slot == 8 and alert.last_slot == 16
        assert alert.energy_kwh == pytest.approx(8 * 8.0)

    def test_short_transients_ignored(self, monitor, grid):
        demand = TimeSeries(grid, 0, [10.0] * 24)
        values = [10.0] * 24
        values[5] = 0.0  # one-slot dip only
        res = TimeSeries(grid, 0, values)
        assert monitor.shortage_alerts(demand, res, []) == []

    def test_severity_scales_with_deficit(self, monitor, grid):
        demand = TimeSeries(grid, 0, [10.0] * 24)
        mild_res = TimeSeries(grid, 0, [10.0] * 8 + [8.5] * 8 + [10.0] * 8)
        harsh_res = TimeSeries(grid, 0, [10.0] * 8 + [0.0] * 8 + [10.0] * 8)
        mild = monitor.shortage_alerts(demand, mild_res, [])[0]
        harsh = monitor.shortage_alerts(demand, harsh_res, [])[0]
        assert harsh.severity is AlertSeverity.CRITICAL
        assert mild.severity in (AlertSeverity.INFO, AlertSeverity.WARNING)

    def test_overlapping_offers_attached(self, monitor, grid):
        demand = TimeSeries(grid, 0, [10.0] * 48)
        res = TimeSeries(grid, 0, [10.0] * 20 + [0.0] * 8 + [10.0] * 20)
        inside = make_offer(offer_id=1, earliest_start=22, time_flexibility=2)
        outside = make_offer(offer_id=2, earliest_start=40, time_flexibility=2)
        alerts = monitor.shortage_alerts(demand, res, [inside, outside])
        assert alerts[0].offer_ids == (1,)

    def test_describe_contains_scope_and_energy(self, monitor, grid):
        demand = TimeSeries(grid, 0, [10.0] * 8)
        res = TimeSeries(grid, 0, [0.0] * 8)
        alert = monitor.shortage_alerts(demand, res, [], region="Zealand")[0]
        text = alert.describe()
        assert "Zealand" in text and "shortage" in text and "kWh" in text


class TestOverCapacityAlerts:
    def test_alert_when_res_exceeds_absorbable_demand(self, monitor, grid):
        demand = TimeSeries(grid, 0, [1.0] * 24)
        res = TimeSeries(grid, 0, [1.0] * 8 + [20.0] * 8 + [1.0] * 8)
        alerts = monitor.over_capacity_alerts(demand, res, [])
        assert len(alerts) == 1
        assert alerts[0].kind is AlertKind.OVER_CAPACITY

    def test_flexibility_absorbs_surplus(self, monitor, grid):
        demand = TimeSeries(grid, 0, [1.0] * 24)
        res = TimeSeries(grid, 0, [1.0] * 8 + [4.0] * 8 + [1.0] * 8)
        # A large flexible offer spanning the surplus window can absorb it.
        big = make_offer(
            offer_id=1,
            earliest_start=8,
            time_flexibility=0,
            profile=tuple((5.0, 6.0) for _ in range(8)),
        )
        without = monitor.over_capacity_alerts(demand, res, [])
        with_flex = monitor.over_capacity_alerts(demand, res, [big])
        assert without and not with_flex


class TestPlanDeviationAlerts:
    def test_no_alert_for_small_deviation(self, monitor, grid):
        planned = TimeSeries(grid, 0, [10.0] * 8)
        realized = TimeSeries(grid, 0, [9.9] * 8)
        assert monitor.plan_deviation_alerts(planned, realized) == []

    def test_alert_for_large_deviation(self, monitor, grid):
        planned = TimeSeries(grid, 0, [10.0] * 8)
        realized = TimeSeries(grid, 0, [5.0] * 8)
        alerts = monitor.plan_deviation_alerts(planned, realized)
        assert len(alerts) == 1
        assert alerts[0].kind is AlertKind.PLAN_DEVIATION
        assert alerts[0].severity is AlertSeverity.CRITICAL

    def test_no_alert_for_empty_plan(self, monitor, grid):
        planned = TimeSeries(grid, 0, [0.0] * 8)
        realized = TimeSeries(grid, 0, [0.0] * 8)
        assert monitor.plan_deviation_alerts(planned, realized) == []


class TestLowFlexibilityAlerts:
    def test_rigid_offers_raise_alert(self, monitor):
        rigid = [make_offer(offer_id=i, time_flexibility=0, profile=((2.0, 2.0),)) for i in range(1, 4)]
        alerts = monitor.low_flexibility_alerts(rigid)
        assert alerts and alerts[0].kind is AlertKind.LOW_FLEXIBILITY

    def test_flexible_offers_do_not(self, monitor):
        flexible = [make_offer(offer_id=i, time_flexibility=30, profile=((0.5, 3.0),)) for i in range(1, 4)]
        assert monitor.low_flexibility_alerts(flexible) == []

    def test_empty_set_is_critical(self, monitor):
        alerts = monitor.low_flexibility_alerts([])
        assert alerts[0].severity is AlertSeverity.CRITICAL


class TestMonitoringPlatform:
    @pytest.fixture(scope="class")
    def platform(self, scenario):
        return MonitoringPlatform(scenario)

    def test_scan_returns_alerts(self, platform):
        report = platform.scan()
        assert len(report) >= 1
        assert report.worst() is not None

    def test_per_region_scan_adds_regional_alerts(self, platform):
        overall = platform.scan()
        regional = platform.scan(per_region=True)
        assert len(regional) >= len(overall)
        assert any(alert.region for alert in regional.alerts)

    def test_report_filters(self, platform):
        report = platform.scan(per_region=True)
        for alert in report.by_kind(AlertKind.SHORTAGE):
            assert alert.kind is AlertKind.SHORTAGE
        for alert in report.by_severity(AlertSeverity.CRITICAL):
            assert alert.severity is AlertSeverity.CRITICAL

    def test_summary_lines_sorted_by_severity(self, platform):
        report = platform.scan(per_region=True)
        lines = report.summary_lines()
        assert len(lines) == len(report)
        if lines and "[CRITICAL]" in "".join(lines):
            assert lines[0].startswith("[CRITICAL]")

    def test_drill_down_offers_and_filter(self, platform, scenario):
        report = platform.scan(per_region=True)
        alert = next(alert for alert in report.alerts if alert.offer_ids)
        offers = platform.offers_for(alert)
        assert {offer.id for offer in offers} == set(alert.offer_ids)
        query = platform.warehouse_filter_for(alert)
        assert query.interval_start == alert.start
        view = platform.drill_down_view(alert)
        assert "<svg" in view.to_svg()

    def test_scan_plan_detects_deviations(self, scenario):
        platform = MonitoringPlatform(scenario)
        plan = run_planning_cycle(
            scenario,
            config=PlanningConfig(realization=RealizationConfig(compliance_probability=0.0, energy_noise_std=0.5, seed=1)),
        )
        report = platform.scan_plan(plan)
        kinds = {alert.kind for alert in report.alerts}
        assert AlertKind.PLAN_DEVIATION in kinds or plan.settlement.total_absolute_deviation == 0.0

"""Tests for flexibility measures and the balancing potential."""

from __future__ import annotations

import pytest

from repro.flexoffer.flexibility import (
    balancing_potential,
    energy_flexibility,
    flexibility_envelope,
    measure,
    time_flexibility_slots,
)
from tests.conftest import make_offer


class TestComponentMeasures:
    def test_time_flexibility_sums(self):
        offers = [make_offer(offer_id=1, time_flexibility=4), make_offer(offer_id=2, time_flexibility=6)]
        assert time_flexibility_slots(offers) == 10

    def test_energy_flexibility_sums(self):
        offers = [make_offer(offer_id=1), make_offer(offer_id=2)]
        assert energy_flexibility(offers) == pytest.approx(5.0)

    def test_empty_collections(self):
        assert time_flexibility_slots([]) == 0
        assert energy_flexibility([]) == 0.0


class TestBalancingPotential:
    def test_empty_set_is_zero(self):
        assert balancing_potential([]) == 0.0

    def test_rigid_offer_scores_zero(self):
        rigid = make_offer(time_flexibility=0, profile=((2.0, 2.0), (2.0, 2.0)))
        assert balancing_potential([rigid]) == pytest.approx(0.0)

    def test_flexible_offer_scores_higher_than_rigid(self):
        rigid = make_offer(offer_id=1, time_flexibility=0, profile=((2.0, 2.0),))
        flexible = make_offer(offer_id=2, time_flexibility=20, profile=((0.5, 3.0),))
        assert balancing_potential([flexible]) > balancing_potential([rigid])

    def test_bounded_between_zero_and_one(self, offer_batch):
        value = balancing_potential(offer_batch)
        assert 0.0 <= value <= 1.0

    def test_more_time_flexibility_increases_potential(self):
        short = make_offer(offer_id=1, time_flexibility=2)
        long = make_offer(offer_id=2, time_flexibility=30)
        assert balancing_potential([long]) > balancing_potential([short])

    def test_zero_energy_offers_are_ignored(self):
        zero = make_offer(profile=((0.0, 0.0),))
        assert balancing_potential([zero]) == 0.0


class TestMeasureSummary:
    def test_measure_counts_offers(self, offer_batch):
        summary = measure(offer_batch)
        assert summary.offer_count == len(offer_batch)
        assert summary.total_max_energy >= summary.total_min_energy

    def test_measure_empty(self):
        summary = measure([])
        assert summary.offer_count == 0
        assert summary.mean_time_flexibility_slots == 0.0

    def test_scheduled_energy_reflects_assignments(self, offer_batch):
        summary = measure(offer_batch)
        expected = sum(offer.scheduled_energy for offer in offer_batch)
        assert summary.total_scheduled_energy == pytest.approx(expected)


class TestEnvelope:
    def test_envelope_totals(self, offer_batch, grid):
        low, high = flexibility_envelope(offer_batch, grid)
        assert low.total() == pytest.approx(sum(o.min_total_energy for o in offer_batch))
        assert high.total() == pytest.approx(sum(o.max_total_energy for o in offer_batch))

    def test_envelope_of_empty_set(self, grid):
        low, high = flexibility_envelope([], grid)
        assert len(low) == 0
        assert len(high) == 0

    def test_high_envelope_spans_whole_flexibility(self, grid):
        offer = make_offer(time_flexibility=10)
        _, high = flexibility_envelope([offer], grid)
        assert high.start_slot == offer.earliest_start_slot
        assert high.end_slot == offer.latest_end_slot

"""Tests for flex-offer aggregation, disaggregation and their metrics."""

from __future__ import annotations

import pytest

from repro.aggregation.aggregate import aggregate, aggregate_group
from repro.aggregation.disaggregate import disaggregate, disaggregation_error
from repro.aggregation.grouping import group_key, group_offers, reduction_ratio
from repro.aggregation.metrics import evaluate
from repro.aggregation.parameters import AggregationParameters
from repro.errors import AggregationError, DisaggregationError
from repro.flexoffer.model import Direction, FlexOfferState, Schedule
from tests.conftest import make_offer


class TestParameters:
    def test_defaults_are_valid(self):
        parameters = AggregationParameters()
        assert parameters.est_tolerance_slots >= 1

    def test_invalid_tolerances_rejected(self):
        with pytest.raises(AggregationError):
            AggregationParameters(est_tolerance_slots=0)
        with pytest.raises(AggregationError):
            AggregationParameters(time_flexibility_tolerance_slots=0)
        with pytest.raises(AggregationError):
            AggregationParameters(max_group_size=-1)


class TestGrouping:
    def test_similar_offers_share_a_group(self):
        parameters = AggregationParameters(est_tolerance_slots=4, time_flexibility_tolerance_slots=4)
        a = make_offer(offer_id=1, earliest_start=40, time_flexibility=5)
        b = make_offer(offer_id=2, earliest_start=41, time_flexibility=6)
        assert group_key(a, parameters) == group_key(b, parameters)

    def test_distant_offers_are_separated(self):
        parameters = AggregationParameters(est_tolerance_slots=4)
        a = make_offer(offer_id=1, earliest_start=40)
        b = make_offer(offer_id=2, earliest_start=60)
        assert group_key(a, parameters) != group_key(b, parameters)

    def test_directions_kept_apart_by_default(self):
        parameters = AggregationParameters()
        a = make_offer(offer_id=1)
        b = make_offer(offer_id=2, direction=Direction.PRODUCTION)
        assert group_key(a, parameters) != group_key(b, parameters)

    def test_directions_merged_when_disabled(self):
        parameters = AggregationParameters(separate_directions=False)
        a = make_offer(offer_id=1)
        b = make_offer(offer_id=2, direction=Direction.PRODUCTION)
        assert group_key(a, parameters)[:2] == group_key(b, parameters)[:2]

    def test_groups_cover_all_offers(self, offer_batch):
        groups = group_offers(offer_batch)
        flattened = [offer.id for group in groups for offer in group]
        assert sorted(flattened) == sorted(offer.id for offer in offer_batch)

    def test_max_group_size_chunks(self):
        offers = [make_offer(offer_id=i, earliest_start=40, time_flexibility=4) for i in range(1, 11)]
        groups = group_offers(offers, AggregationParameters(max_group_size=3))
        assert all(len(group) <= 3 for group in groups)

    def test_existing_aggregates_stay_alone(self):
        from dataclasses import replace

        aggregate_offer = replace(make_offer(offer_id=99), is_aggregate=True, constituent_ids=(1, 2))
        groups = group_offers([aggregate_offer, make_offer(offer_id=1)])
        assert [aggregate_offer] in groups

    def test_reduction_ratio(self):
        assert reduction_ratio(100, 25) == 4.0
        assert reduction_ratio(0, 0) == 0.0
        assert reduction_ratio(10, 0) == 10.0


class TestAggregateGroup:
    def test_empty_group_rejected(self):
        with pytest.raises(AggregationError):
            aggregate_group([], 1)

    def test_mixed_directions_rejected(self):
        group = [make_offer(offer_id=1), make_offer(offer_id=2, direction=Direction.PRODUCTION)]
        with pytest.raises(AggregationError):
            aggregate_group(group, 10)

    def test_singleton_gets_aggregate_identity(self):
        offer = make_offer()
        combined = aggregate_group([offer], 10)
        assert combined.id == 10
        assert combined.is_aggregate
        assert combined.constituent_ids == (offer.id,)
        assert combined.prosumer_id == offer.prosumer_id
        assert combined.min_total_energy == pytest.approx(offer.min_total_energy)
        assert combined.max_total_energy == pytest.approx(offer.max_total_energy)
        assert combined.time_flexibility_slots == offer.time_flexibility_slots
        assert combined.earliest_start_slot == offer.earliest_start_slot

    def test_batch_aggregate_still_passes_singleton_groups_through(self):
        # A lone offer in its own grid cell stays a raw offer in aggregate().
        offer = make_offer(offer_id=5)
        result = aggregate([offer])
        assert result.offers == [offer]
        assert result.aggregates == []

    def test_energy_bounds_are_summed(self):
        group = [make_offer(offer_id=1, earliest_start=40), make_offer(offer_id=2, earliest_start=40)]
        combined = aggregate_group(group, 10)
        assert combined.min_total_energy == pytest.approx(sum(o.min_total_energy for o in group))
        assert combined.max_total_energy == pytest.approx(sum(o.max_total_energy for o in group))

    def test_time_flexibility_is_group_minimum(self):
        group = [
            make_offer(offer_id=1, time_flexibility=4),
            make_offer(offer_id=2, time_flexibility=10),
        ]
        combined = aggregate_group(group, 10)
        assert combined.time_flexibility_slots == 4

    def test_anchor_is_minimum_earliest_start(self):
        group = [
            make_offer(offer_id=1, earliest_start=42),
            make_offer(offer_id=2, earliest_start=40),
        ]
        combined = aggregate_group(group, 10)
        assert combined.earliest_start_slot == 40

    def test_profile_length_covers_latest_offset(self):
        group = [
            make_offer(offer_id=1, earliest_start=40),
            make_offer(offer_id=2, earliest_start=44),
        ]
        combined = aggregate_group(group, 10)
        assert len(combined.profile) == (44 - 40) + 3

    def test_provenance_recorded(self):
        group = [make_offer(offer_id=1, earliest_start=40), make_offer(offer_id=2, earliest_start=40)]
        combined = aggregate_group(group, 77)
        assert combined.id == 77
        assert combined.is_aggregate
        assert combined.constituent_ids == (1, 2)

    def test_mixed_attributes_become_mixed(self):
        group = [
            make_offer(offer_id=1, earliest_start=40, region="Capital"),
            make_offer(offer_id=2, earliest_start=40, region="Zealand"),
        ]
        assert aggregate_group(group, 10).region == "mixed"

    def test_uniform_attributes_are_kept(self):
        group = [
            make_offer(offer_id=1, earliest_start=40),
            make_offer(offer_id=2, earliest_start=40),
        ]
        assert aggregate_group(group, 10).region == "Capital"


class TestAggregateMany:
    def test_reduces_count(self, scenario):
        result = aggregate(scenario.flex_offers, AggregationParameters(est_tolerance_slots=8, time_flexibility_tolerance_slots=8))
        assert len(result.offers) < len(scenario.flex_offers)

    def test_energy_is_preserved(self, scenario):
        result = aggregate(scenario.flex_offers)
        assert sum(o.max_total_energy for o in result.offers) == pytest.approx(
            sum(o.max_total_energy for o in scenario.flex_offers), rel=1e-9
        )

    def test_constituent_lookup(self, scenario):
        result = aggregate(scenario.flex_offers)
        for combined in result.aggregates:
            constituents = result.constituents_of(combined.id)
            assert {offer.id for offer in constituents} == set(combined.constituent_ids)

    def test_aggregate_ids_do_not_clash(self, scenario):
        result = aggregate(scenario.flex_offers, id_offset=10_000)
        original_ids = {offer.id for offer in scenario.flex_offers}
        for combined in result.aggregates:
            assert combined.id not in original_ids

    def test_larger_tolerance_aggregates_more(self, scenario):
        tight = aggregate(scenario.flex_offers, AggregationParameters(est_tolerance_slots=1, time_flexibility_tolerance_slots=1))
        loose = aggregate(scenario.flex_offers, AggregationParameters(est_tolerance_slots=16, time_flexibility_tolerance_slots=16))
        assert len(loose.offers) <= len(tight.offers)


class TestDisaggregate:
    def _aggregate_pair(self):
        group = [
            make_offer(offer_id=1, earliest_start=40, time_flexibility=6),
            make_offer(offer_id=2, earliest_start=42, time_flexibility=8),
        ]
        combined = aggregate_group(group, 100)
        return group, combined

    def test_requires_schedule(self):
        group, combined = self._aggregate_pair()
        with pytest.raises(DisaggregationError):
            disaggregate(combined, group)

    def test_constituents_must_match_provenance(self):
        group, combined = self._aggregate_pair()
        scheduled = combined.with_default_schedule()
        with pytest.raises(DisaggregationError):
            disaggregate(scheduled, [make_offer(offer_id=9)])

    def test_start_shift_propagates(self):
        group, combined = self._aggregate_pair()
        shift = 3
        schedule = Schedule(
            start_slot=combined.earliest_start_slot + shift,
            energy_per_slice=tuple(p.min_energy for p in combined.profile),
        )
        assigned = disaggregate(combined, group, schedule)
        for original, result in zip(group, assigned):
            assert result.schedule.start_slot == original.earliest_start_slot + shift
            assert result.state is FlexOfferState.ASSIGNED

    def test_schedules_respect_constituent_bounds(self):
        group, combined = self._aggregate_pair()
        schedule = Schedule(
            start_slot=combined.earliest_start_slot,
            energy_per_slice=tuple(p.max_energy for p in combined.profile),
        )
        assigned = disaggregate(combined, group, schedule)
        for offer in assigned:
            for piece, amount in zip(offer.profile, offer.schedule.energy_per_slice):
                assert piece.min_energy - 1e-9 <= amount <= piece.max_energy + 1e-9

    def test_minimum_schedule_distributes_minimums(self):
        group, combined = self._aggregate_pair()
        scheduled = combined.with_default_schedule()
        assigned = disaggregate(scheduled, group)
        total = sum(offer.scheduled_energy for offer in assigned)
        assert total == pytest.approx(sum(o.min_total_energy for o in group), rel=1e-6)

    def test_disaggregation_error_is_small(self):
        group, combined = self._aggregate_pair()
        schedule = Schedule(
            start_slot=combined.earliest_start_slot + 1,
            energy_per_slice=tuple((p.min_energy + p.max_energy) / 2 for p in combined.profile),
        )
        scheduled = combined.assign(schedule)
        assigned = disaggregate(scheduled, group)
        assert disaggregation_error(scheduled, assigned) < 0.2 * scheduled.scheduled_energy


class TestMetrics:
    def test_reduction_and_flexibility_loss(self, scenario):
        parameters = AggregationParameters(est_tolerance_slots=8, time_flexibility_tolerance_slots=8)
        result = aggregate(scenario.flex_offers, parameters)
        metrics = evaluate(scenario.flex_offers, result)
        assert metrics.original_count == len(scenario.flex_offers)
        assert metrics.aggregated_count == len(result.offers)
        assert metrics.reduction_ratio >= 1.0
        assert 0.0 <= metrics.time_flexibility_loss_ratio <= 1.0
        assert metrics.aggregated_energy == pytest.approx(metrics.original_energy, rel=1e-9)

    def test_no_aggregation_means_no_loss(self, offer_batch):
        parameters = AggregationParameters(est_tolerance_slots=1, time_flexibility_tolerance_slots=1, max_group_size=1)
        result = aggregate(offer_batch, parameters)
        metrics = evaluate(offer_batch, result)
        assert metrics.aggregated_count == metrics.original_count
        assert metrics.time_flexibility_loss_ratio == 0.0


class TestKernel:
    """Numpy kernel ≡ scalar fallback, bit for bit, and the fallback story."""

    def _adversarial_groups(self):
        """Groups built to stress the kernels: empty-band slices, singletons,
        misaligned multi-slot durations, ragged profile lengths."""
        from dataclasses import replace as dc_replace

        from repro.flexoffer.model import ProfileSlice

        zero_band = dc_replace(
            make_offer(offer_id=1, earliest_start=40, time_flexibility=6),
            profile=(ProfileSlice(0.0, 0.0), ProfileSlice(0.0, 2.5)),
        )
        misaligned = dc_replace(
            make_offer(offer_id=2, earliest_start=41, time_flexibility=7),
            profile=(ProfileSlice(1.0, 2.0, 3), ProfileSlice(0.7, 0.9)),
        )
        long_tail = dc_replace(
            make_offer(offer_id=3, earliest_start=40, time_flexibility=9),
            profile=tuple(
                ProfileSlice(0.1 * i, 0.1 * i + 1e-9, 1 + i % 4) for i in range(12)
            ),
        )
        plain = make_offer(offer_id=4, earliest_start=42, time_flexibility=8)
        return [
            [zero_band],
            [plain, misaligned],
            [zero_band, misaligned, long_tail, plain],
            [make_offer(offer_id=i, earliest_start=40 + i % 3, time_flexibility=5)
             for i in range(10, 60)],
        ]

    def test_numpy_and_scalar_are_bit_identical(self):
        import struct

        from repro.aggregation import kernel

        if not kernel.numpy_available():
            pytest.skip("numpy unavailable")
        for group in self._adversarial_groups():
            with kernel.force_kernel("scalar"):
                expected = aggregate_group(group, 77)
            with kernel.force_kernel("numpy"):
                actual = aggregate_group(group, 77)
            assert actual == expected
            # Equality on floats can hide signed zeros; compare raw bits too.
            for ours, theirs in zip(actual.profile, expected.profile):
                assert struct.pack("<dd", ours.min_energy, ours.max_energy) == struct.pack(
                    "<dd", theirs.min_energy, theirs.max_energy
                )

    def test_profile_bounds_property_bit_identity(self):
        from repro.aggregation import kernel

        if not kernel.numpy_available():
            pytest.skip("numpy unavailable")
        from hypothesis import given, settings
        from hypothesis import strategies as st

        from dataclasses import replace as dc_replace

        from repro.flexoffer.model import ProfileSlice

        slices = st.tuples(
            st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
            st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
            st.integers(min_value=1, max_value=4),
        )

        @given(
            profiles=st.lists(st.lists(slices, min_size=1, max_size=6), min_size=1, max_size=8),
            starts=st.lists(st.integers(min_value=40, max_value=47), min_size=8, max_size=8),
        )
        @settings(deadline=None, max_examples=40)
        def check(profiles, starts):
            group = []
            for index, pieces in enumerate(profiles):
                profile = tuple(
                    ProfileSlice(min(low, high), max(low, high), duration)
                    for low, high, duration in pieces
                )
                group.append(
                    dc_replace(
                        make_offer(
                            offer_id=index + 1,
                            earliest_start=starts[index],
                            time_flexibility=5,
                        ),
                        profile=profile,
                    )
                )
            anchor = min(offer.earliest_start_slot for offer in group)
            offsets = [offer.earliest_start_slot - anchor for offer in group]
            length = max(
                offset + offer.profile_duration_slots
                for offset, offer in zip(offsets, group)
            )
            scalar = kernel.profile_bounds_scalar(group, offsets, length)
            vectorized = kernel.profile_bounds_numpy(group, offsets, length)
            assert vectorized == scalar

        check()

    def test_fallback_engages_without_numpy(self, monkeypatch):
        from repro.aggregation import kernel

        group = [
            make_offer(offer_id=i, earliest_start=40, time_flexibility=5)
            for i in range(1, 80)  # big enough that auto mode would pick numpy
        ]
        with kernel.force_kernel("scalar"):
            expected = aggregate_group(group, 5)
        monkeypatch.setattr(kernel, "_np", None)
        result = aggregate_group(group, 5)
        assert kernel.last_kernel_used() == "scalar"
        assert result == expected
        # Explicitly requesting the numpy kernel without numpy must raise, not
        # silently fall back: callers asked for something impossible.
        with pytest.raises(AggregationError):
            kernel.profile_bounds_numpy(group, [0] * len(group), 3)

    def test_auto_dispatch_picks_numpy_for_large_groups(self):
        from repro.aggregation import kernel

        if not kernel.numpy_available():
            pytest.skip("numpy unavailable")
        small = [make_offer(offer_id=1, earliest_start=40, time_flexibility=5)]
        large = [
            make_offer(offer_id=i, earliest_start=40, time_flexibility=5)
            for i in range(1, 80)
        ]
        aggregate_group(large, 9)
        assert kernel.last_kernel_used() == "numpy"
        aggregate_group(small, 9)
        assert kernel.last_kernel_used() == "scalar"

    def test_force_kernel_rejects_unknown_mode(self):
        from repro.aggregation import kernel

        with pytest.raises(AggregationError):
            with kernel.force_kernel("simd"):
                pass

"""Tests for the basic view (Figure 8) and the profile view (Figure 9)."""

from __future__ import annotations

import pytest

from repro.render.scene import Line, Rect
from repro.views.basic import BasicView, BasicViewOptions
from repro.views.lanes import LaneStrategy, lane_count, lanes_are_valid
from repro.views.profile_view import ProfileView, ProfileViewOptions
from repro.views.selection import SelectionRectangle
from tests.conftest import make_offer


class TestBasicView:
    @pytest.fixture(scope="class")
    def view(self, scenario):
        return BasicView(scenario.flex_offers, scenario.grid)

    def test_lane_assignment_is_valid(self, view, scenario):
        assert lanes_are_valid(scenario.flex_offers, view.lane_assignment)

    def test_svg_mentions_every_offer(self, view, scenario):
        svg = view.to_svg()
        for offer in scenario.flex_offers[:10]:
            assert f'data-element="fo:{offer.id}"' in svg

    def test_scheduled_offers_have_red_start_line(self, view, scenario):
        scene = view.scene()
        scheduled_ids = {offer.id for offer in scenario.flex_offers if offer.schedule is not None}
        start_lines = [
            node
            for node in scene.walk()
            if isinstance(node, Line) and node.css_class == "scheduled-start"
        ]
        assert {int(node.element_id.split(":")[1]) for node in start_lines} == scheduled_ids

    def test_aggregated_offers_use_red_boxes(self, scenario):
        from repro.aggregation import AggregationParameters, aggregate

        result = aggregate(scenario.flex_offers, AggregationParameters(est_tolerance_slots=8, time_flexibility_tolerance_slots=8))
        view = BasicView(result.offers, scenario.grid)
        svg = view.to_svg()
        assert "profile-box aggregated" in svg

    def test_every_offer_has_flexibility_and_profile_boxes(self, view, scenario):
        scene = view.scene()
        flexibility = [n for n in scene.walk() if isinstance(n, Rect) and n.css_class == "time-flexibility"]
        profiles = [n for n in scene.walk() if isinstance(n, Rect) and "profile-box" in n.css_class]
        assert len(flexibility) == len(scenario.flex_offers)
        assert len(profiles) == len(scenario.flex_offers)

    def test_boxes_stay_inside_plot_area(self, view):
        area = view.options.plot_area
        for node in view.scene().walk():
            if isinstance(node, Rect) and "profile-box" in node.css_class:
                assert node.x >= area.left - 1
                assert node.x + node.width <= area.right + 1

    def test_caption_shows_counts(self, view, scenario):
        assert f"{len(scenario.flex_offers)} flex-offers" in view.to_svg()

    def test_offer_at_hits_a_real_offer(self, view, scenario):
        # Probe the centre of the first offer's profile box.
        scene = view.scene()
        box = next(n for n in scene.walk() if isinstance(n, Rect) and "profile-box" in n.css_class)
        offer_id = view.offer_at(box.x + box.width / 2, box.y + box.height / 2)
        assert offer_id in {offer.id for offer in scenario.flex_offers}

    def test_offer_at_empty_area_returns_none(self, view):
        assert view.offer_at(1.0, 1.0) is None

    def test_rectangle_query_full_area_selects_all(self, view, scenario):
        area = view.options.plot_area
        found = view.offers_in_rectangle(area.left, area.top, area.right, area.bottom)
        assert set(found) == {offer.id for offer in scenario.flex_offers}

    def test_rectangle_query_left_half_is_partial(self, view, scenario):
        area = view.options.plot_area
        found = view.offers_in_rectangle(area.left, area.top, area.left + area.width / 4, area.bottom)
        assert 0 < len(found) < len(scenario.flex_offers)

    def test_selection_rectangle_is_drawn(self, scenario):
        view = BasicView(
            scenario.flex_offers,
            scenario.grid,
            selection_rectangle=SelectionRectangle(100, 100, 300, 200),
        )
        assert "selection-rectangle" in view.to_svg()

    def test_one_per_lane_strategy(self, scenario):
        options = BasicViewOptions(lane_strategy=LaneStrategy.ONE_PER_LANE)
        view = BasicView(scenario.flex_offers, scenario.grid, options=options)
        assert lane_count(view.lane_assignment) == len(scenario.flex_offers)

    def test_empty_view_renders(self, grid):
        view = BasicView([], grid)
        assert "<svg" in view.to_svg()

    def test_scene_is_memoised(self, scenario):
        view = BasicView(scenario.flex_offers, scenario.grid)
        assert view.scene() is view.scene()
        view.invalidate()
        assert view.scene() is not None

    def test_ascii_rendering(self, scenario):
        view = BasicView(scenario.flex_offers[:10], scenario.grid)
        art = view.to_ascii(columns=80)
        assert "#" in art


class TestProfileView:
    @pytest.fixture(scope="class")
    def offers(self, scenario):
        return scenario.flex_offers[:25]

    @pytest.fixture(scope="class")
    def view(self, offers, scenario):
        return ProfileView(offers, scenario.grid)

    def test_energy_scale_is_shared_maximum(self, view, offers):
        expected = max(
            piece.max_energy / piece.duration_slots for offer in offers for piece in offer.profile
        )
        assert view.max_slice_energy() == pytest.approx(expected)

    def test_every_offer_has_energy_bars(self, view, offers):
        scene = view.scene()
        band_ids = {
            node.element_id
            for node in scene.walk()
            if isinstance(node, Rect) and node.css_class == "energy-band"
        }
        assert band_ids == {f"fo:{offer.id}" for offer in offers}

    def test_min_bars_below_band_tops(self, view):
        scene = view.scene()
        bands = [n for n in scene.walk() if isinstance(n, Rect) and n.css_class == "energy-band"]
        minimums = [n for n in scene.walk() if isinstance(n, Rect) and n.css_class == "energy-min"]
        assert len(bands) == len(minimums)

    def test_scheduled_offers_show_red_energy_lines(self, view, offers):
        scene = view.scene()
        scheduled = {offer.id for offer in offers if offer.schedule is not None}
        lines = {
            int(node.element_id.split(":")[1])
            for node in scene.walk()
            if isinstance(node, Line) and node.css_class == "scheduled-energy"
        }
        assert lines == scheduled

    def test_caption_mentions_shared_scale(self, view):
        assert "shared energy scale" in view.to_svg()

    def test_rectangle_query(self, view, offers):
        area = view.options.plot_area
        found = view.offers_in_rectangle(area.left, area.top, area.right, area.bottom)
        assert set(found) == {offer.id for offer in offers}

    def test_lane_labels_present(self, view, offers):
        svg = view.to_svg()
        assert f"#{offers[0].id}" in svg

    def test_hide_lane_scale(self, offers, scenario):
        options = ProfileViewOptions(show_lane_scale=False, show_legend=False)
        view = ProfileView(offers, scenario.grid, options=options)
        assert "lane-label" not in view.to_svg()

    def test_single_offer_profile(self, grid):
        offer = make_offer().with_default_schedule()
        view = ProfileView([offer], grid)
        svg = view.to_svg()
        assert svg.count("energy-band") == len(offer.profile)

    def test_empty_view_renders(self, grid):
        assert "<svg" in ProfileView([], grid).to_svg()

    def test_profile_view_has_more_nodes_than_basic(self, offers, scenario):
        """The profile view is the denser encoding — the reason it only scales to a few thousand offers."""
        from repro.views.basic import BasicView

        basic_nodes = BasicView(offers, scenario.grid).scene().count_nodes()
        profile_nodes = ProfileView(offers, scenario.grid).scene().count_nodes()
        assert profile_nodes > basic_nodes

"""Tests for lane packing, the selection model and the tooltip details."""

from __future__ import annotations

import pytest

from repro.errors import ViewError
from repro.views.basic import BasicView
from repro.views.lanes import LaneStrategy, assign_lanes, lane_count, lanes_are_valid, offer_interval
from repro.views.selection import SelectionModel, SelectionRectangle
from repro.views.tooltip import describe, describe_many, overlay
from tests.conftest import make_offer


class TestLanes:
    def test_interval_spans_flexibility_and_profile(self, sample_offer):
        start, end = offer_interval(sample_offer)
        assert start == sample_offer.earliest_start_slot
        assert end == sample_offer.latest_end_slot

    def test_non_overlapping_offers_share_one_lane(self):
        offers = [make_offer(offer_id=1, earliest_start=0, time_flexibility=2),
                  make_offer(offer_id=2, earliest_start=20, time_flexibility=2)]
        lanes = assign_lanes(offers)
        assert lane_count(lanes) == 1

    def test_overlapping_offers_get_separate_lanes(self):
        offers = [make_offer(offer_id=1, earliest_start=10), make_offer(offer_id=2, earliest_start=11)]
        lanes = assign_lanes(offers)
        assert lanes[1] != lanes[2]

    def test_first_fit_packing_is_valid(self, offer_batch):
        lanes = assign_lanes(offer_batch)
        assert lanes_are_valid(offer_batch, lanes)

    def test_first_fit_uses_fewer_lanes_than_one_per_offer(self, scenario):
        packed = assign_lanes(scenario.flex_offers, LaneStrategy.FIRST_FIT)
        naive = assign_lanes(scenario.flex_offers, LaneStrategy.ONE_PER_LANE)
        assert lane_count(packed) < lane_count(naive)
        assert lane_count(naive) == len(scenario.flex_offers)

    def test_one_per_lane_is_valid_too(self, offer_batch):
        lanes = assign_lanes(offer_batch, LaneStrategy.ONE_PER_LANE)
        assert lanes_are_valid(offer_batch, lanes)

    def test_every_offer_is_assigned(self, scenario):
        lanes = assign_lanes(scenario.flex_offers)
        assert set(lanes) == {offer.id for offer in scenario.flex_offers}

    def test_empty_assignment(self):
        assert assign_lanes([]) == {}
        assert lane_count({}) == 0

    def test_missing_offer_invalidates(self, offer_batch):
        lanes = assign_lanes(offer_batch)
        del lanes[offer_batch[0].id]
        assert not lanes_are_valid(offer_batch, lanes)

    def test_overlap_in_same_lane_invalidates(self):
        offers = [make_offer(offer_id=1, earliest_start=10), make_offer(offer_id=2, earliest_start=11)]
        assert not lanes_are_valid(offers, {1: 0, 2: 0})


class TestSelectionModel:
    def test_initially_empty(self, offer_batch):
        model = SelectionModel(offer_batch)
        assert len(model) == 0
        assert model.selected_offers() == []

    def test_select_replaces(self, offer_batch):
        model = SelectionModel(offer_batch)
        model.select([1, 2])
        model.select([3])
        assert model.selected_ids == {3}

    def test_select_extend(self, offer_batch):
        model = SelectionModel(offer_batch)
        model.select([1])
        model.select([2], extend=True)
        assert model.selected_ids == {1, 2}

    def test_unknown_ids_ignored(self, offer_batch):
        model = SelectionModel(offer_batch)
        model.select([999])
        assert len(model) == 0

    def test_toggle(self, offer_batch):
        model = SelectionModel(offer_batch)
        model.toggle(5)
        assert model.is_selected(5)
        model.toggle(5)
        assert not model.is_selected(5)

    def test_toggle_unknown_raises(self, offer_batch):
        with pytest.raises(ViewError):
            SelectionModel(offer_batch).toggle(999)

    def test_clear(self, offer_batch):
        model = SelectionModel(offer_batch)
        model.select([1, 2, 3])
        model.clear()
        assert len(model) == 0

    def test_select_slot_range(self, offer_batch):
        model = SelectionModel(offer_batch)
        found = model.select_slot_range(30, 40)
        assert found
        for offer in model.selected_offers():
            assert offer.earliest_start_slot < 40 and offer.latest_end_slot > 30

    def test_rectangle_selection_against_basic_view(self, scenario):
        view = BasicView(scenario.flex_offers, scenario.grid)
        model = SelectionModel(scenario.flex_offers)
        area = view.options.plot_area
        rectangle = SelectionRectangle(area.left, area.top, area.right, area.bottom)
        found = model.select_rectangle(view, rectangle)
        assert found == {offer.id for offer in scenario.flex_offers}

    def test_rectangle_selection_normalizes_direction(self, scenario):
        view = BasicView(scenario.flex_offers, scenario.grid)
        model = SelectionModel(scenario.flex_offers)
        area = view.options.plot_area
        forward = model.select_rectangle(view, SelectionRectangle(area.left, area.top, area.right, area.bottom))
        backward = model.select_rectangle(view, SelectionRectangle(area.right, area.bottom, area.left, area.top))
        assert forward == backward

    def test_rectangle_selection_requires_capable_view(self, offer_batch):
        model = SelectionModel(offer_batch)
        with pytest.raises(ViewError):
            model.select_rectangle(object(), SelectionRectangle(0, 0, 1, 1))

    def test_extract_and_remove(self, offer_batch):
        model = SelectionModel(offer_batch)
        model.select([1, 2])
        extracted = model.extract_to_new_tab()
        remaining = model.remove_from_view()
        assert [offer.id for offer in extracted] == [1, 2]
        assert len(remaining) == len(offer_batch) - 2
        assert all(offer.id not in (1, 2) for offer in remaining)

    def test_process_with_tool(self, offer_batch):
        model = SelectionModel(offer_batch)
        model.select([1, 2, 3])
        assert model.process_with(len) == 3


class TestTooltip:
    def test_describe_plain_offer(self, sample_offer, grid):
        details = describe(sample_offer, grid)
        assert details.offer_id == sample_offer.id
        assert details.scheduled_energy is None
        text = details.to_text()
        assert "start window" in text
        assert f"#{sample_offer.id}" in text

    def test_describe_scheduled_offer(self, scheduled_offer, grid):
        details = describe(scheduled_offer, grid)
        assert details.scheduled_energy == pytest.approx(scheduled_offer.scheduled_energy)
        assert "scheduled" in details.to_text()

    def test_describe_aggregate_lists_constituents(self, grid):
        from dataclasses import replace

        offer = replace(make_offer(), is_aggregate=True, constituent_ids=tuple(range(1, 20)))
        details = describe(offer, grid)
        assert "aggregated from 19" in details.to_text()
        assert "..." in details.to_text()

    def test_describe_many(self, offer_batch, grid):
        assert len(describe_many(offer_batch[:3], grid)) == 3

    def test_overlay_contains_three_markers(self, sample_offer, grid):
        from repro.render.axes import PlotArea
        from repro.render.scales import SlotTimeScale
        from repro.render.scene import Line

        area = PlotArea(left=0, top=0, width=1000, height=100)
        scale = SlotTimeScale.build(grid, 0, 96, area.left, area.right)
        group = overlay(sample_offer, scale, area)
        markers = [node for node in group.walk() if isinstance(node, Line) and node.css_class == "time-marker"]
        assert len(markers) == 3

    def test_overlay_provenance_links_for_aggregate(self, grid):
        from dataclasses import replace

        from repro.render.axes import PlotArea
        from repro.render.scales import SlotTimeScale
        from repro.render.scene import Line

        aggregate_offer = replace(make_offer(offer_id=100), is_aggregate=True, constituent_ids=(1, 2))
        area = PlotArea(left=0, top=0, width=1000, height=300)
        scale = SlotTimeScale.build(grid, 0, 96, area.left, area.right)
        group = overlay(
            aggregate_offer, scale, area, lane_assignment={100: 0, 1: 1, 2: 2}, lane_height=20.0
        )
        links = [node for node in group.walk() if isinstance(node, Line) and node.css_class == "provenance-link"]
        assert len(links) == 2

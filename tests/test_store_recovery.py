"""Property tests for the recovery contract of :mod:`repro.store`.

The contract: *restoring from a checkpoint taken at any point of the stream
and replaying the log tail is observably equivalent to a full replay* — for
every live-family engine, with the batch pipeline as the fourth reference
(via :meth:`FlexSession.snapshot`, checked by ``RecoveryManager.verify``).
Equivalence is the same normal form ``tests/test_session_equivalence.py``
uses: identical surviving offer ids, aggregate profiles bit-for-bit, ids
modulo :func:`~repro.live.engine.canonical_form`.
"""

from __future__ import annotations

import shutil
import tempfile
from collections import Counter

import pytest

pytest.importorskip(
    "numpy",
    reason="scenario-driven recovery tests need numpy (test_store_binary.py is the numpy-free leg)",
    exc_type=ImportError,
)

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.scenarios import ScenarioConfig, generate_scenario
from repro.errors import ReproError, StoreError
from repro.live.engine import canonical_form
from repro.live.events import EventLog, OfferWithdrawn
from repro.live.replay import scenario_event_stream
from repro.session import FlexSession
from repro.store import (
    RecoveryManager,
    SegmentStore,
    SnapshotStore,
    capture_engine_state,
    restore_engine_state,
)

STREAM_ENGINES = ("live", "sharded", "async")

_SCENARIO = generate_scenario(ScenarioConfig(prosumer_count=30, seed=13))

#: (update_fraction, withdraw_fraction) -> the replay-ordered event stream.
_STREAMS = {
    (0.0, 0.0): scenario_event_stream(_SCENARIO).replay_order(),
    (0.25, 0.15): scenario_event_stream(
        _SCENARIO, update_fraction=0.25, withdraw_fraction=0.15, seed=3
    ).replay_order(),
}


def _canonical_state(session: FlexSession) -> Counter:
    session.engine.refresh()
    return Counter(
        canonical_form(offer) for offer in session.engine.engine.aggregated_offers()
    )


def _profiles(session: FlexSession) -> list:
    session.engine.refresh()
    return sorted(
        tuple((p.min_energy, p.max_energy, p.duration_slots) for p in offer.profile)
        for offer in session.engine.engine.aggregated_offers()
        if offer.is_aggregate
    )


def _full_replay(engine: str, mutation) -> tuple[Counter, list, list[int]]:
    session = FlexSession(_SCENARIO, engine=engine, live_preload=False)
    session.replay(list(_STREAMS[mutation]))
    state = _canonical_state(session)
    profiles = _profiles(session)
    ids = sorted(offer.id for offer in session.engine.offers())
    session.close()
    return state, profiles, ids


#: Full-replay references, computed once per (engine, mutation) pair.
_REFERENCES = {
    (engine, mutation): _full_replay(engine, mutation)
    for engine in STREAM_ENGINES
    for mutation in _STREAMS
}


@pytest.mark.parametrize("engine", STREAM_ENGINES)
@given(
    cut_fraction=st.floats(min_value=0.05, max_value=0.95),
    mutation=st.sampled_from(sorted(_STREAMS)),
)
@settings(deadline=None, max_examples=10)
def test_checkpoint_at_random_point_plus_tail_equals_full_replay(
    engine, cut_fraction, mutation
):
    """The headline contract, for clean and mutated/withdrawn streams."""
    ordered = _STREAMS[mutation]
    cut = max(1, int(len(ordered) * cut_fraction))
    directory = tempfile.mkdtemp(prefix="repro-store-")
    try:
        writer = FlexSession(_SCENARIO, engine=engine, live_preload=False)
        manager = RecoveryManager(directory, segment_size=64)
        manager.record(ordered)
        writer.replay(ordered[:cut])
        checkpoint = manager.checkpoint(writer)
        assert checkpoint.log_offset == cut
        writer.close()

        restored = FlexSession.restore(directory)
        assert restored.engine_name == engine
        ref_state, ref_profiles, ref_ids = _REFERENCES[(engine, mutation)]
        assert sorted(o.id for o in restored.engine.offers()) == ref_ids
        assert _canonical_state(restored) == ref_state
        # Bit-identical aggregate profiles, exactly like the session suite.
        assert _profiles(restored) == ref_profiles
        # The batch pipeline is the fourth reference engine.
        RecoveryManager(directory).verify(restored)
        restored.close()
    finally:
        shutil.rmtree(directory, ignore_errors=True)


@pytest.mark.parametrize("target", STREAM_ENGINES)
def test_cross_engine_restore(target, tmp_path):
    """A checkpoint written by one engine family restores into any other."""
    ordered = _STREAMS[(0.25, 0.15)]
    cut = int(len(ordered) * 0.6)
    writer = FlexSession(_SCENARIO, engine="sharded", live_preload=False)
    manager = RecoveryManager(tmp_path, segment_size=64)
    manager.record(ordered)
    writer.replay(ordered[:cut])
    writer.checkpoint(str(tmp_path))
    writer.close()

    restored = FlexSession.restore(str(tmp_path), engine=target)
    assert restored.engine_name == target
    ref_state, ref_profiles, ref_ids = _REFERENCES[(target, (0.25, 0.15))]
    assert sorted(o.id for o in restored.engine.offers()) == ref_ids
    assert _canonical_state(restored) == ref_state
    # Provenance stays reachable even when ids came from another family's
    # allocator (non-congruent ids probe all shards).
    aggregates = [o for o in restored.engine.engine.aggregated_offers() if o.is_aggregate]
    inner = restored.engine.engine
    owned = [a for a in aggregates if inner.constituents_of(a.id)]
    assert owned == aggregates
    RecoveryManager(tmp_path).verify(restored)
    restored.close()


def test_restore_after_tombstone_compacted_warehouse(tmp_path):
    """Mass withdrawals tombstone + auto-compact the fact table; the
    checkpointed warehouse stays equivalent through the CSV round trip."""
    scenario = generate_scenario(ScenarioConfig(prosumer_count=100, seed=17))
    session = FlexSession(scenario, engine="live")
    fact = session.engine.schema.table("fact_flexoffer")
    population = [o for o in session.engine.offers() if not o.is_aggregate]
    victims = population[: int(len(population) * 0.7)]
    for victim in victims:
        session.ingest(OfferWithdrawn(victim.creation_time, victim.id))
    session.commit()
    # Enough deletes crossed the auto-compaction threshold at least once.
    assert fact.tombstone_count < len(victims)
    session.checkpoint(str(tmp_path))
    restored = FlexSession.restore(str(tmp_path))
    assert sorted(o.id for o in restored.engine.offers()) == sorted(
        o.id for o in session.engine.offers()
    )
    assert _canonical_state(restored) == _canonical_state(session)
    # The restored warehouse answers repository queries identically.
    assert restored.engine.repository.summary()["offer_count"] == len(
        [o for o in restored.engine.offers() if not o.is_aggregate]
    )
    RecoveryManager(tmp_path).verify(restored)
    session.close()
    restored.close()


class TestSegmentStore:
    def _events(self, count):
        return _STREAMS[(0.0, 0.0)][:count]

    def test_rollover_and_tail(self, tmp_path):
        store = SegmentStore(tmp_path, segment_size=10)
        assert store.extend(self._events(25)) == 25
        assert len(store.segments()) == 3
        assert store.next_sequence == 25
        tail = list(store.tail(18))
        assert len(tail) == 7
        assert list(store.tail(0))[18:] == tail

    def test_reopen_resumes_sequence(self, tmp_path):
        store = SegmentStore(tmp_path, segment_size=10)
        store.extend(self._events(12))
        reopened = SegmentStore(tmp_path, segment_size=10)
        assert reopened.next_sequence == 12
        events = self._events(15)
        assert reopened.append(events[12]) == 12
        assert reopened.stored_events == 13
        # The partially filled active segment was resumed, not restarted.
        assert len(reopened.segments()) == 2

    def test_compaction_drops_only_dead_prefix_events(self, tmp_path):
        ordered = _STREAMS[(0.25, 0.15)]
        store = SegmentStore(tmp_path, segment_size=32)
        store.extend(ordered)
        survivors = store.surviving_subjects()
        before = store.stored_events
        dropped = store.compact(survivors)
        assert dropped > 0
        assert store.stored_events == before - dropped
        assert store.next_sequence == len(ordered)
        # Every remaining prefix event concerns an offer that still matters.
        for event in store.events():
            pass  # decodes cleanly
        # A cold replay of the compacted log ends in the reference state.
        session = FlexSession(_SCENARIO, engine="live", live_preload=False)
        session.replay(list(store.events()))
        ref_state, _, ref_ids = _REFERENCES[("live", (0.25, 0.15))]
        assert sorted(o.id for o in session.engine.offers()) == ref_ids
        assert _canonical_state(session) == ref_state
        session.close()

    def test_torn_final_line_repaired_on_reopen(self, tmp_path):
        """A crash mid-append leaves a partial last line; reopening truncates
        it and reissues its sequence number instead of refusing the log."""
        store = SegmentStore(tmp_path, segment_size=100)
        events = self._events(10)
        store.extend(events)
        active = store.segments()[-1]
        with open(active, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 10, "event": {"type": "ad')  # torn write
        reopened = SegmentStore(tmp_path, segment_size=100)
        assert reopened.next_sequence == 10
        assert len(list(reopened.events())) == 10
        # The reissued sequence lands where the torn record would have.
        assert reopened.append(self._events(11)[10]) == 10

    def test_mid_file_corruption_still_raises(self, tmp_path):
        store = SegmentStore(tmp_path, segment_size=100)
        store.extend(self._events(5))
        active = store.segments()[-1]
        lines = active.read_text().splitlines()
        lines[1] = '{"seq": 1, "event"'  # corruption that is not a torn tail
        active.write_text("\n".join(lines) + "\n")
        with pytest.raises(ReproError):
            SegmentStore(tmp_path, segment_size=100)

    def test_segment_order_is_numeric_not_lexical(self, tmp_path):
        store = SegmentStore(tmp_path, segment_size=4)
        # Force names whose lexical and numeric orders disagree.
        store._next_sequence = 99999998
        store._active = None
        store.extend(self._events(8))
        names = [path.name for path in store.segments()]
        assert names == sorted(names, key=lambda n: int(n[7:-6]))
        assert store.segments()[-1].name.startswith("events-100000002")
        reopened = SegmentStore(tmp_path, segment_size=4)
        assert reopened.next_sequence == store.next_sequence

    def test_read_paths_create_no_directories(self, tmp_path):
        missing = tmp_path / "nothing"
        with pytest.raises(StoreError):
            RecoveryManager(missing).restore()
        assert not missing.exists()

    def test_compaction_protects_checkpoint_tail(self, tmp_path):
        ordered = _STREAMS[(0.25, 0.15)]
        cut = int(len(ordered) * 0.5)
        writer = FlexSession(_SCENARIO, engine="live", live_preload=False)
        manager = RecoveryManager(tmp_path, segment_size=16)
        manager.record(ordered)
        writer.replay(ordered[:cut])
        manager.checkpoint(writer)
        writer.close()
        manager.compact()
        # The tail [cut, ...) survived compaction in full.
        assert len(list(manager.log.tail(cut))) == len(ordered) - cut
        restored = manager.restore()
        ref_state, _, ref_ids = _REFERENCES[("live", (0.25, 0.15))]
        assert sorted(o.id for o in restored.engine.offers()) == ref_ids
        assert _canonical_state(restored) == ref_state
        restored.close()


class TestSnapshotStore:
    def test_saves_double_buffer_and_preserve_previous_checkpoint(self, tmp_path):
        """Re-saves land in the other buffer; a crash before the manifest swap
        leaves the previous checkpoint fully loadable."""
        session = FlexSession(_SCENARIO, engine="live")
        store = SnapshotStore(tmp_path)
        first = capture_engine_state(session.engine.engine)
        store.save(first, log_offset=5)
        live_buffer = store.load().manifest["data"]
        session.ingest(OfferWithdrawn(_SCENARIO.flex_offers[0].creation_time,
                                      _SCENARIO.flex_offers[0].id))
        session.commit()
        second = capture_engine_state(session.engine.engine)
        store.save(second, log_offset=6)
        reloaded = store.load()
        assert reloaded.manifest["data"] != live_buffer
        assert reloaded.log_offset == 6
        # Simulate the crash window: new data written, manifest swap not yet
        # done — the old manifest still pairs with its own untouched buffer.
        (tmp_path / "manifest.json").unlink()
        store.save(first, log_offset=5)
        assert store.load().log_offset == 5
        session.close()

    def test_missing_manifest_refused(self, tmp_path):
        store = SnapshotStore(tmp_path)
        assert not store.exists()
        with pytest.raises(StoreError):
            store.load()

    def test_unknown_version_refused(self, tmp_path):
        (tmp_path / "manifest.json").write_text('{"version": 99}', encoding="utf-8")
        with pytest.raises(StoreError):
            SnapshotStore(tmp_path).load()

    def test_capture_refuses_dirty_engine(self):
        session = FlexSession(_SCENARIO, engine="live", live_preload=False)
        events = _STREAMS[(0.0, 0.0)]
        session.ingest(events[0])
        with pytest.raises(StoreError):
            capture_engine_state(session.engine.engine)
        session.commit()
        state = capture_engine_state(session.engine.engine)
        assert state.engine == "live"
        session.close()

    def test_restore_refuses_parameter_mismatch(self):
        from repro.aggregation.parameters import AggregationParameters
        from repro.live.engine import LiveAggregationEngine

        session = FlexSession(_SCENARIO, engine="live")
        state = capture_engine_state(session.engine.engine)
        other = LiveAggregationEngine(AggregationParameters(est_tolerance_slots=16))
        with pytest.raises(StoreError):
            restore_engine_state(other, state)
        session.close()


class TestEventLogStreaming:
    def test_iter_dicts_streams_lazily(self):
        log = EventLog(_STREAMS[(0.0, 0.0)][:5])
        stream = log.iter_dicts()
        assert next(stream)["type"] == "added"
        assert log.to_dicts() == list(log.iter_dicts())

    def test_jsonl_round_trip(self, tmp_path):
        log = EventLog(_STREAMS[(0.25, 0.15)][:40])
        path = tmp_path / "events.jsonl"
        assert log.to_jsonl(path) == 40
        reloaded = EventLog.from_jsonl(path)
        assert reloaded.to_dicts() == log.to_dicts()

    def test_from_iter_accepts_generators(self):
        log = EventLog(_STREAMS[(0.0, 0.0)][:7])
        rebuilt = EventLog.from_iter(payload for payload in log.iter_dicts())
        assert len(rebuilt) == 7
        assert rebuilt.to_dicts() == log.to_dicts()


def test_replay_resume_from_skips_consumed_prefix():
    ordered = _STREAMS[(0.0, 0.0)]
    session = FlexSession(_SCENARIO, engine="live", live_preload=False)
    cut = len(ordered) // 2
    first = session.replay(ordered[:cut])
    assert session.engine.events_ingested == cut
    second = session.replay(ordered, resume_from=cut)
    assert second.resumed_from == cut
    assert second.events == len(ordered) - cut
    assert session.engine.events_ingested == len(ordered)
    ref_state, _, ref_ids = _REFERENCES[("live", (0.0, 0.0))]
    assert sorted(o.id for o in session.engine.offers()) == ref_ids
    assert _canonical_state(session) == ref_state
    session.close()
    assert first.events == cut


def test_recheckpoint_same_directory_advances_offset(tmp_path):
    """The API flow a service uses: keep recording, checkpoint periodically.

    The second checkpoint overwrites the first atomically (manifest removed
    during the rewrite, re-written last) and restores from the newer offset.
    """
    ordered = _STREAMS[(0.25, 0.15)]
    first, second = int(len(ordered) * 0.4), int(len(ordered) * 0.8)
    session = FlexSession(_SCENARIO, engine="live", live_preload=False)
    manager = RecoveryManager(tmp_path, segment_size=64)
    manager.record(ordered)
    session.replay(ordered[:first])
    assert manager.checkpoint(session).log_offset == first
    session.replay(ordered[:second], resume_from=first)
    assert manager.checkpoint(session).log_offset == second
    session.close()
    restored = manager.restore()
    assert manager.last_restore.log_offset == second
    assert manager.last_restore.tail_events == len(ordered) - second
    ref_state, _, ref_ids = _REFERENCES[("live", (0.25, 0.15))]
    assert sorted(o.id for o in restored.engine.offers()) == ref_ids
    assert _canonical_state(restored) == ref_state
    restored.close()


def test_session_checkpoint_records_backend_offset(tmp_path):
    ordered = _STREAMS[(0.0, 0.0)]
    session = FlexSession(_SCENARIO, engine="live", live_preload=False)
    session.ingest_many(ordered[:30])
    checkpoint = session.checkpoint(str(tmp_path))
    assert checkpoint.log_offset == 30
    assert checkpoint.manifest["version"] == 1
    session.close()


@pytest.mark.parametrize("target_engine", ("live", "sharded"))
def test_restore_rebuilds_chunk_ledger_clean(target_engine):
    """Restore must not cause spurious first-commit re-aggregation.

    Regression test for the chunk-granular dirty ledger: a restored engine
    is a *committed* state, so an immediate commit re-aggregates nothing,
    and the first real mutation re-aggregates exactly the one chunk it
    perturbs — the clean chunks of the restored cell are reused, proving
    the per-(cell, chunk) outputs were rebuilt chunk-index aligned.
    """
    from dataclasses import replace

    from repro.aggregation.parameters import AggregationParameters
    from repro.live.engine import LiveAggregationEngine
    from repro.live.events import OfferAdded, OfferUpdated
    from repro.live.sharded import ShardedAggregationEngine
    from tests.conftest import make_offer

    parameters = AggregationParameters(max_group_size=4)
    source = LiveAggregationEngine(parameters)
    for index in range(1, 65):  # one cell, 16 chunks of 4
        offer = make_offer(offer_id=index, earliest_start=40, time_flexibility=8)
        source.apply(OfferAdded(offer.creation_time, offer))
    source.commit()
    state = capture_engine_state(source)

    restored = (
        LiveAggregationEngine(parameters)
        if target_engine == "live"
        else ShardedAggregationEngine(parameters, shard_count=3, parallel=False)
    )
    restore_engine_state(restored, state)
    assert restored.dirty_chunk_count == 0
    clean = restored.commit()
    assert clean.chunks_reaggregated == 0
    assert clean.chunks_skipped == 0
    assert clean.dirty_cells == ()

    current = restored.offer(42)
    restored.apply(
        OfferUpdated(current.creation_time, replace(current, price_per_kwh=55.5))
    )
    result = restored.commit()
    assert result.chunks_reaggregated == 1
    assert result.chunks_skipped == 15
    state_live = Counter(canonical_form(o) for o in restored.aggregated_offers())
    state_batch = Counter(canonical_form(o) for o in restored.batch_equivalent().offers)
    assert state_live == state_batch

"""The SI-paper-style black-box proof: readers racing a committing engine.

Reader threads query with ``consistency="latest"`` — the lock-free mode that
never flushes — while a writer drives the engine through a mutated event
stream.  Every read records ``(version observed, canonical result)``; the
history is then verified the way the snapshot-isolation checker treats a
database as a black box:

* **atomicity** — each observed result is bit-identical to a from-scratch
  execution against the committed snapshot of the version it claims (a read
  that saw half a commit cannot match any single version);
* **monotonic reads** — no thread's observed versions ever decrease.

The snapshot ring's ``retain`` is raised so every version survives to be
re-executed — no read escapes verification.  ``HYPOTHESIS_PROFILE=extended``
(the weekly CI job) multiplies the reader workload.
"""

from __future__ import annotations

import os
import threading

import pytest

from repro.datagen.scenarios import ScenarioConfig, generate_scenario
from repro.live.replay import scenario_event_stream
from repro.readpath import run_concurrent_readers, verify_history
from repro.session import FlexSession
from repro.session.spec import QuerySpec

EXTENDED = os.environ.get("HYPOTHESIS_PROFILE", "") == "extended"
READS_PER_THREAD = 120 if EXTENDED else 25
READER_THREADS = 6 if EXTENDED else 4


@pytest.fixture(scope="module")
def race_scenario():
    return generate_scenario(ScenarioConfig(prosumer_count=40, seed=17))


def _specs(session, scenario):
    regions = sorted({offer.region for offer in scenario.offers_in_arrival_order()})
    return [
        QuerySpec(),
        QuerySpec.build(state="assigned"),
        QuerySpec.build(parameters=session.parameters),
        QuerySpec.build(region=regions[0] if regions else "Capital"),
    ]


@pytest.mark.parametrize("engine", ("live", "sharded", "async"))
def test_concurrent_reads_are_atomic_and_monotonic(engine, race_scenario):
    with FlexSession(race_scenario, engine=engine, live_preload=False) as session:
        backend = session.engine
        backend.readpath.manager.retain = 100_000  # verify every read
        events = scenario_event_stream(
            race_scenario, update_fraction=0.4, withdraw_fraction=0.2, seed=3
        ).replay_order()

        failures: list[BaseException] = []

        def writer() -> None:
            try:
                for index, event in enumerate(events):
                    session.ingest(event)
                    if index % 40 == 39:
                        session.commit()  # sync engines churn versions too
                session.commit()
            except BaseException as exc:  # pragma: no cover - surfaced below
                failures.append(exc)

        thread = threading.Thread(target=writer, name="writer")
        thread.start()
        try:
            history = run_concurrent_readers(
                session,
                _specs(session, race_scenario),
                threads=READER_THREADS,
                reads_per_thread=READS_PER_THREAD,
            )
        finally:
            thread.join()
        assert not failures, failures
        backend.refresh()
        assert len(history) == READER_THREADS * READS_PER_THREAD
        violations = verify_history(history, backend)
        assert violations == [], "\n".join(violations)
        # The race was real: the engine committed while readers were reading.
        assert backend.readpath.manager.latest_version > 1


def test_checker_flags_a_torn_history(race_scenario):
    """The checker itself is falsifiable: a fabricated mixed-version read and
    a backwards read both surface as violations."""
    from collections import Counter

    from repro.readpath import ReadHistory, ReadObservation

    with FlexSession(race_scenario, engine="live") as session:
        backend = session.engine
        spec = QuerySpec()
        honest = session.query(spec)
        history = ReadHistory()
        history.record(0, 0, spec, honest)
        # A torn read: claims the honest version but saw different content.
        history.observations.append(
            ReadObservation(
                thread=0,
                sequence=1,
                version=honest.version,
                spec=spec,
                canonical=Counter({"not-a-real-offer": 1}),
            )
        )
        # Time travel: the same thread then reports an older version.
        history.observations.append(
            ReadObservation(
                thread=0,
                sequence=2,
                version=honest.version - 1,
                spec=spec,
                canonical=honest.canonical(),
            )
        )
        violations = verify_history(history, backend)
        assert any("torn read" in violation for violation in violations)
        assert any("time travel" in violation for violation in violations)

"""Tests for time-series resampling."""

from __future__ import annotations

from datetime import timedelta

import numpy as np
import pytest

from repro.errors import TimeGridError
from repro.timeseries.grid import TimeGrid
from repro.timeseries.resample import ResampleKind, downsample, resample, upsample
from repro.timeseries.series import TimeSeries


class TestDownsample:
    def test_sum_downsample_preserves_total(self, grid, hour_grid):
        series = TimeSeries(grid, 0, np.arange(96, dtype=float), unit="kWh")
        coarse = downsample(series, hour_grid, ResampleKind.SUM)
        assert len(coarse) == 24
        assert coarse.total() == pytest.approx(series.total())

    def test_sum_downsample_groups_of_four(self, grid, hour_grid):
        series = TimeSeries(grid, 0, [1.0] * 8)
        coarse = downsample(series, hour_grid, ResampleKind.SUM)
        assert coarse.values.tolist() == [4.0, 4.0]

    def test_mean_downsample(self, grid, hour_grid):
        series = TimeSeries(grid, 0, [2.0, 4.0, 6.0, 8.0])
        coarse = downsample(series, hour_grid, ResampleKind.MEAN)
        assert coarse.values.tolist() == [5.0]

    def test_downsample_unaligned_start(self, grid, hour_grid):
        series = TimeSeries(grid, 2, [1.0] * 4)  # slots 2..5 straddle two hours
        coarse = downsample(series, hour_grid, ResampleKind.SUM)
        assert coarse.start_slot == 0
        assert coarse.values.tolist() == [2.0, 2.0]

    def test_same_resolution_is_copy(self, grid):
        series = TimeSeries(grid, 3, [1.0, 2.0])
        result = downsample(series, grid)
        assert result.values.tolist() == [1.0, 2.0]
        assert result.start_slot == 3

    def test_incompatible_ratio_raises(self, grid):
        target = TimeGrid(resolution=timedelta(minutes=40))
        series = TimeSeries(grid, 0, [1.0] * 8)
        with pytest.raises(TimeGridError):
            downsample(series, target)


class TestUpsample:
    def test_sum_upsample_splits_energy(self, grid, hour_grid):
        series = TimeSeries(hour_grid, 0, [4.0, 8.0])
        fine = upsample(series, grid, ResampleKind.SUM)
        assert len(fine) == 8
        assert fine.values.tolist() == [1.0] * 4 + [2.0] * 4
        assert fine.total() == pytest.approx(series.total())

    def test_mean_upsample_repeats_values(self, grid, hour_grid):
        series = TimeSeries(hour_grid, 0, [4.0])
        fine = upsample(series, grid, ResampleKind.MEAN)
        assert fine.values.tolist() == [4.0] * 4

    def test_upsample_start_slot_scales(self, grid, hour_grid):
        series = TimeSeries(hour_grid, 2, [4.0])
        fine = upsample(series, grid, ResampleKind.SUM)
        assert fine.start_slot == 8


class TestResampleDispatch:
    def test_resample_chooses_downsample(self, grid, hour_grid):
        series = TimeSeries(grid, 0, [1.0] * 8)
        assert len(resample(series, hour_grid)) == 2

    def test_resample_chooses_upsample(self, grid, hour_grid):
        series = TimeSeries(hour_grid, 0, [1.0])
        assert len(resample(series, grid)) == 4

    def test_resample_same_resolution_shifts_origin(self, grid):
        shifted = TimeGrid(origin=grid.origin + timedelta(minutes=30))
        series = TimeSeries(grid, 4, [1.0, 2.0])
        result = resample(series, shifted)
        # Slot 4 on the original grid is slot 2 on the shifted grid.
        assert result.start_slot == 2
        assert result.values.tolist() == [1.0, 2.0]

    def test_roundtrip_preserves_total(self, grid, hour_grid):
        series = TimeSeries(grid, 0, np.random.default_rng(1).uniform(0, 5, 96))
        roundtrip = upsample(downsample(series, hour_grid), grid)
        assert roundtrip.total() == pytest.approx(series.total())

"""Production tracing: trace/span ids, explicit cross-thread handoff,
head-based sampling, flip safety, and the flamegraph/trace exporters.

Unit tests build private :class:`MetricsRegistry`/:class:`Tracer` pairs; the
engine-integration tests (sharded fan-out, async worker) go through the
``global_obs`` fixture because the engines bind the process-global tracer at
import time.
"""

from __future__ import annotations

import json
import threading
import time
from io import StringIO

import pytest

from repro import obs
from repro.errors import ObservabilityError
from repro.obs.export import (
    export_jsonl,
    read_jsonl_export,
    to_chrome_trace,
    to_prometheus_text,
)
from repro.obs.flame import (
    folded_stacks,
    format_trace,
    to_folded_text,
    trace_summaries,
    write_folded,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Sampler, SpanRecord, Tracer


@pytest.fixture
def registry() -> MetricsRegistry:
    return MetricsRegistry(enabled=True)


@pytest.fixture
def tracer(registry) -> Tracer:
    return Tracer(registry)


@pytest.fixture
def global_obs():
    obs.reset()
    try:
        yield obs.get_registry()
    finally:
        obs.disable()
        obs.reset()


# ----------------------------------------------------------------------
# Ids
# ----------------------------------------------------------------------
def test_ids_disambiguate_same_named_siblings(tracer):
    with tracer.span("commit"):
        with tracer.span("drain"):
            pass
        with tracer.span("drain"):
            pass
    drains = tracer.finished(name="drain")
    (root,) = tracer.finished(name="commit")
    assert root.parent_id is None and root.depth == 0
    assert root.trace_id and root.span_id
    # Name linkage cannot tell the two drains apart; the ids can.
    assert drains[0].parent == drains[1].parent == "commit"
    assert drains[0].span_id != drains[1].span_id
    assert {span.parent_id for span in drains} == {root.span_id}
    assert {span.trace_id for span in drains} == {root.trace_id}


def test_each_root_mints_a_fresh_trace_id(tracer):
    for _ in range(3):
        with tracer.span("op"):
            pass
    ids = [span.trace_id for span in tracer.finished()]
    assert len(set(ids)) == 3 and all(ids)


def test_span_record_round_trip_and_pre_id_compat():
    record = SpanRecord(
        name="x",
        started=1.0,
        duration=0.5,
        depth=1,
        parent="root",
        thread="MainThread",
        span_id=10,
        parent_id=9,
        trace_id=8,
    )
    payload = record.to_dict()
    assert payload["span_id"] == 10 and payload["parent_id"] == 9
    assert SpanRecord.from_dict(payload) == record
    # Dumps written before spans carried ids still parse, ids defaulted.
    legacy = {
        "name": "x",
        "started": 1.0,
        "duration": 0.5,
        "depth": 0,
        "parent": None,
        "thread": "MainThread",
    }
    old = SpanRecord.from_dict(legacy)
    assert old.span_id == 0 and old.parent_id is None and old.trace_id == 0


# ----------------------------------------------------------------------
# Explicit cross-thread handoff
# ----------------------------------------------------------------------
def test_attach_joins_worker_spans_to_the_trace(tracer):
    handoff = {}

    def worker():
        with tracer.attach(handoff["context"]):
            with tracer.span("worker.step"):
                pass

    with tracer.span("main.op") as root:
        handoff["context"] = tracer.context()
        thread = threading.Thread(target=worker, name="handoff-worker")
        thread.start()
        thread.join()
        root_span_id, root_trace_id = root.span_id, root.trace_id
    (worker_span,) = tracer.finished(name="worker.step")
    assert worker_span.trace_id == root_trace_id
    assert worker_span.parent_id == root_span_id
    assert worker_span.depth == 1
    assert worker_span.thread == "handoff-worker"
    # ``parent`` (the name) still points at the remote parent for old readers.
    assert worker_span.parent == "main.op"


def test_attach_none_is_transparent(tracer):
    with tracer.attach(None):
        with tracer.span("solo"):
            pass
    (span,) = tracer.finished()
    assert span.parent_id is None and span.depth == 0


def test_context_is_none_without_an_open_span(tracer, registry):
    assert tracer.context() is None
    registry.disable()
    with tracer.span("muted"):
        assert tracer.context() is None


# ----------------------------------------------------------------------
# Head-based sampling
# ----------------------------------------------------------------------
def test_sampler_validates_rates():
    with pytest.raises(ObservabilityError):
        Sampler(default_rate=-1)
    with pytest.raises(ObservabilityError):
        Sampler(default_rate=1, rates={"x": 2.5})


def test_sampler_is_deterministic_first_then_every_nth():
    sampler = Sampler(default_rate=4)
    assert [sampler.sample("op") for _ in range(8)] == [
        True, False, False, False, True, False, False, False,
    ]
    assert Sampler(default_rate=1).sample("op") is True
    assert Sampler(default_rate=0).sample("op") is False


def test_sampler_per_stage_overrides():
    sampler = Sampler(default_rate=0, rates={"store.checkpoint": 1})
    assert sampler.rate_for("store.checkpoint") == 1
    assert sampler.rate_for("live.commit") == 0
    assert sampler.sample("store.checkpoint") and not sampler.sample("live.commit")


def test_sampled_out_roots_mute_children_but_not_metrics(tracer, registry):
    histogram = registry.histogram("repro.test.op.seconds", "latency")
    tracer.set_sampler(Sampler(default_rate=2))
    for _ in range(4):
        with tracer.span("op"):
            with tracer.span("op.child"):
                pass
            histogram.observe(0.001)
    spans = tracer.finished()
    # 1-in-2: ops 1 and 3 record (with their children); 2 and 4 vanish whole.
    assert len(spans) == 4
    assert len({span.trace_id for span in spans}) == 2
    assert len(tracer.finished(name="op.child")) == 2
    # Sampling thins traces only — every round still hit the histogram.
    assert histogram.count == 4


def test_sampled_out_context_mutes_the_attached_thread(tracer):
    tracer.set_sampler(Sampler(default_rate=0))
    captured = {}

    def worker():
        with tracer.attach(captured["context"]):
            with tracer.span("worker.step"):
                pass

    with tracer.span("op"):
        captured["context"] = tracer.context()
        assert captured["context"] is not None and not captured["context"].recording
        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
    assert tracer.finished() == []


def test_clear_restarts_the_sampler_counters(tracer):
    tracer.set_sampler(Sampler(default_rate=4))
    with tracer.span("op"):
        pass
    tracer.clear()
    with tracer.span("op"):  # first occurrence again: must record
        pass
    assert len(tracer.finished()) == 1


def test_global_reset_drops_the_sampler(global_obs):
    obs.set_sampler(Sampler(default_rate=16))
    assert obs.get_tracer().sampler is not None
    obs.reset()
    assert obs.get_tracer().sampler is None


# ----------------------------------------------------------------------
# Enable/disable flip safety
# ----------------------------------------------------------------------
def test_enable_mid_operation_records_no_orphans(tracer, registry):
    registry.disable()
    outer = tracer.span("outer")
    with outer:
        registry.enable()
        # The root never recorded; a child recorded now would be an orphan
        # grafted onto a trace that does not exist.
        with tracer.span("child"):
            pass
    assert tracer.finished() == []
    # The flip is over once the muted stack unwound: the next span records.
    with tracer.span("fresh"):
        pass
    (fresh,) = tracer.finished()
    assert fresh.name == "fresh" and fresh.parent_id is None


def test_disable_mid_operation_keeps_the_open_root(tracer, registry):
    with tracer.span("outer"):
        registry.disable()
        with tracer.span("child"):  # muted: opened while disabled
            pass
        registry.enable()
    spans = tracer.finished()
    assert [span.name for span in spans] == ["outer"]


# ----------------------------------------------------------------------
# Engine integration: one trace across threads
# ----------------------------------------------------------------------
def test_sharded_commit_is_one_trace_across_pool_threads(global_obs):
    from repro.live.events import OfferAdded
    from repro.live.sharded import ShardedAggregationEngine

    from tests.conftest import make_offer

    engine = ShardedAggregationEngine(shard_count=4, parallel_min_cells=1)
    offers = [make_offer(offer_id=i, earliest_start=8 * i) for i in range(1, 9)]
    for offer in offers:
        engine.apply(OfferAdded(offer.creation_time, offer))
    obs.enable()
    try:
        engine.commit()
    finally:
        obs.disable()
    spans = obs.get_tracer().finished()
    (root,) = [span for span in spans if span.name == "sharded.commit"]
    assert {span.trace_id for span in spans} == {root.trace_id}
    (fanout,) = [span for span in spans if span.name == "sharded.commit.fanout"]
    drains = [span for span in spans if span.name == "sharded.shard.drain"]
    assert drains and all(span.parent_id == fanout.span_id for span in drains)
    pool_threads = {span.thread for span in drains}
    assert all(name.startswith("shard-commit") for name in pool_threads)
    # The trace genuinely spans threads: the root ran on this thread, the
    # drains on the pool's.
    assert root.thread not in pool_threads


def test_async_worker_commit_joins_the_ingest_trace(global_obs):
    from repro.live.asynccommit import AsyncCommitEngine
    from repro.live.engine import LiveAggregationEngine
    from repro.live.events import OfferAdded

    from tests.conftest import make_offer

    engine = AsyncCommitEngine(LiveAggregationEngine(), drain_batch=1024)
    offers = [make_offer(offer_id=i, earliest_start=8 * i) for i in range(1, 6)]
    obs.enable()
    try:
        tracer = obs.get_tracer()
        with tracer.span("ingest.batch") as ingest:
            ingest_ids = (ingest.trace_id, ingest.span_id)
            for offer in offers:
                engine.apply(OfferAdded(offer.creation_time, offer))
            # The worker commits on its own once the queue runs empty; wait
            # for that commit so it demonstrably ran on the worker thread.
            deadline = time.time() + 10.0
            while engine.commit_count < 1 and time.time() < deadline:
                time.sleep(0.002)
        assert engine.commit_count >= 1, "worker never committed"
    finally:
        obs.disable()
        engine.close()
    commits = [
        span
        for span in obs.get_tracer().finished(name="async.commit")
        if span.thread == "async-commit-worker"
    ]
    assert commits, "no worker-side async.commit span recorded"
    worker_commit = commits[0]
    trace_id, span_id = ingest_ids
    assert worker_commit.trace_id == trace_id
    assert worker_commit.parent_id == span_id
    # Id-verified single trace across both threads: the ingest root and the
    # worker's commit (plus its drain children) share one trace id.
    trace = obs.get_tracer().finished(trace_id=trace_id)
    assert {span.thread for span in trace} >= {"async-commit-worker"}
    assert any(span.name == "ingest.batch" for span in trace)


# ----------------------------------------------------------------------
# Chrome trace_event export
# ----------------------------------------------------------------------
def test_chrome_trace_has_required_fields_and_thread_lanes(tracer):
    def worker():
        with tracer.span("worker.op"):
            pass

    with tracer.span("main.op"):
        thread = threading.Thread(target=worker, name="lane-two")
        thread.start()
        thread.join()
    document = to_chrome_trace(tracer.finished(), pid=7)
    events = document["traceEvents"]
    slices = [event for event in events if event["ph"] == "X"]
    metas = [event for event in events if event["ph"] == "M"]
    assert len(slices) == 2 and metas
    for event in slices:
        for field in ("name", "cat", "ph", "pid", "tid", "ts", "dur", "args"):
            assert field in event
        assert event["pid"] == 7 and isinstance(event["tid"], int)
        assert event["ts"] >= 0 and event["dur"] >= 0
        assert event["args"]["trace_id"] and event["args"]["span_id"]
    # Distinct threads land in distinct integer lanes, each named by a
    # thread_name metadata event — the way Chrome's own traces do it.
    assert len({event["tid"] for event in slices}) == 2
    named = {meta["args"]["name"] for meta in metas if meta["name"] == "thread_name"}
    assert "lane-two" in named
    json.dumps(document)  # the whole document must be JSON-serializable


# ----------------------------------------------------------------------
# Folded stacks
# ----------------------------------------------------------------------
def test_folded_stacks_sum_to_root_durations(tracer):
    with tracer.span("root"):
        with tracer.span("child.a"):
            with tracer.span("leaf"):
                pass
        with tracer.span("child.b"):
            pass
    spans = tracer.finished()
    folded = folded_stacks(spans)
    assert set(folded) == {
        "root",
        "root;child.a",
        "root;child.a;leaf",
        "root;child.b",
    }
    (root,) = [span for span in spans if span.name == "root"]
    total_us = sum(folded.values())
    assert total_us == pytest.approx(root.duration * 1e6, abs=1e-3)
    assert all(value >= 0.0 for value in folded.values())
    text = to_folded_text(spans)
    assert text.splitlines() == sorted(text.splitlines())


def test_folded_cross_thread_children_root_their_own_stacks(tracer):
    captured = {}

    def worker():
        with tracer.attach(captured["context"]):
            with tracer.span("worker.op"):
                pass

    with tracer.span("root"):
        captured["context"] = tracer.context()
        thread = threading.Thread(target=worker, name="folded-worker")
        thread.start()
        thread.join()
    folded = folded_stacks(tracer.finished())
    # The worker span ran concurrently with its remote parent; folding it
    # under ``root`` would produce negative self-time, so it starts a stack.
    assert "worker.op" in folded
    assert "root;worker.op" not in folded


def test_write_folded_to_a_path(tmp_path, tracer):
    with tracer.span("a"):
        with tracer.span("b"):
            pass
    target = tmp_path / "stacks.folded"
    assert write_folded(target, tracer.finished()) == 2
    lines = target.read_text(encoding="utf-8").splitlines()
    assert [line.rsplit(" ", 1)[0] for line in lines] == ["a", "a;b"]


# ----------------------------------------------------------------------
# Trace summaries and the tree printer
# ----------------------------------------------------------------------
def test_trace_summaries_one_row_per_trace(tracer):
    with tracer.span("first"):
        with tracer.span("inner"):
            pass
    with tracer.span("second"):
        pass
    rows = trace_summaries(tracer.finished())
    assert [row["root"] for row in rows] == ["first", "second"]
    assert rows[0]["spans"] == 2 and rows[1]["spans"] == 1
    assert rows[0]["trace_id"] != rows[1]["trace_id"]


def test_format_trace_draws_the_id_tree(tracer):
    captured = {}

    def worker():
        with tracer.attach(captured["context"]):
            with tracer.span("remote.child"):
                pass

    with tracer.span("op") as root:
        trace_id = root.trace_id
        with tracer.span("local.child"):
            pass
        captured["context"] = tracer.context()
        thread = threading.Thread(target=worker, name="tree-worker")
        thread.start()
        thread.join()
    rendered = format_trace(tracer.finished(), trace_id)
    lines = rendered.splitlines()
    assert lines[0].startswith(f"trace {trace_id}")
    assert any(line.lstrip().startswith("op") for line in lines)
    indented = [line for line in lines if line.startswith("    ")]
    assert len(indented) == 2
    # The cross-thread child is flagged with its thread name.
    assert any("remote.child" in line and "[tree-worker]" in line for line in lines)
    assert "no spans" in format_trace(tracer.finished(), 999_999_999)


# ----------------------------------------------------------------------
# Labeled series through the exporters (satellite coverage)
# ----------------------------------------------------------------------
def test_jsonl_round_trip_keeps_labeled_histogram_buckets(registry):
    histogram = registry.histogram(
        "repro.test.lab.seconds",
        "labeled latency",
        boundaries=(0.001, 0.01),
        labels={"shard": "2"},
    )
    for value in (0.0005, 0.005, 0.5):
        histogram.observe(value)
    buffer = StringIO()
    export_jsonl(buffer, registry)
    metrics, _ = read_jsonl_export(buffer.getvalue().splitlines())
    snapshot = metrics['repro.test.lab.seconds{shard="2"}']
    assert snapshot["labels"] == {"shard": "2"}
    assert snapshot["count"] == 3
    assert snapshot["bucket_counts"] == [1, 1, 1]
    assert snapshot["boundaries"] == [0.001, 0.01]


def test_prometheus_merges_user_labels_with_le_on_every_bucket(registry):
    histogram = registry.histogram(
        "repro.test.lab.seconds",
        "labeled latency",
        boundaries=(0.001, 0.01),
        labels={"shard": "2"},
    )
    histogram.observe(0.005)
    text = to_prometheus_text(registry)
    bucket_lines = [
        line
        for line in text.splitlines()
        if line.startswith("repro_test_lab_seconds_bucket")
    ]
    # One line per boundary plus +Inf, each carrying both label sets.
    assert len(bucket_lines) == 3
    assert all('shard="2"' in line and 'le="' in line for line in bucket_lines)
    assert any('le="+Inf"' in line for line in bucket_lines)


# ----------------------------------------------------------------------
# CLI surfaces
# ----------------------------------------------------------------------
def test_cli_stats_flame_folded_then_trace(global_obs, tmp_path, capsys):
    from repro.app.cli import main

    dump = tmp_path / "obs.jsonl"
    flame = tmp_path / "flame.json"
    folded = tmp_path / "stacks.folded"
    assert (
        main(
            [
                "--prosumers", "40",
                "stats",
                "--export-jsonl", str(dump),
                "--flame", str(flame),
                "--folded", str(folded),
            ]
        )
        == 0
    )
    capsys.readouterr()
    document = json.loads(flame.read_text(encoding="utf-8"))
    assert any(event["ph"] == "X" for event in document["traceEvents"])
    assert folded.read_text(encoding="utf-8").strip()

    assert main(["trace", "--list", "--input", str(dump)]) == 0
    listing = capsys.readouterr().out
    assert "live.commit" in listing

    assert main(["trace", "latest", "--input", str(dump)]) == 0
    tree = capsys.readouterr().out
    assert tree.startswith("trace ")

    assert main(["trace", "123456789", "--input", str(dump)]) == 1
    assert main(["trace", "not-a-number", "--input", str(dump)]) == 2
    assert main(["trace", "--input", str(tmp_path / "missing.jsonl")]) == 2


def test_cli_stats_sample_flag(global_obs, capsys):
    from repro.app.cli import main

    assert main(["--prosumers", "40", "stats", "--sample", "4", "--smoke"]) == 0
    out = capsys.readouterr().out
    assert "head-sampling roots 1-in-4" in out
    assert "stats smoke OK" in out
    assert main(["--prosumers", "40", "stats", "--sample", "-1"]) == 2

"""Tests for the TimeSeries substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TimeGridError
from repro.timeseries.grid import TimeGrid
from repro.timeseries.series import TimeSeries, accumulate


class TestConstruction:
    def test_values_are_copied(self, grid):
        values = np.ones(4)
        series = TimeSeries(grid, 0, values)
        values[0] = 99.0
        assert series.values[0] == 1.0

    def test_rejects_two_dimensional_values(self, grid):
        with pytest.raises(TimeGridError):
            TimeSeries(grid, 0, np.ones((2, 2)))

    def test_zeros_constructor(self, grid):
        series = TimeSeries.zeros(grid, 5, 10)
        assert len(series) == 10
        assert series.total() == 0.0
        assert series.start_slot == 5

    def test_from_pairs_fills_gaps_with_zero(self, grid):
        series = TimeSeries.from_pairs(grid, [(2, 1.0), (5, 3.0)])
        assert series.start_slot == 2
        assert len(series) == 4
        assert series.value_at(3) == 0.0
        assert series.value_at(5) == 3.0

    def test_from_pairs_sums_duplicate_slots(self, grid):
        series = TimeSeries.from_pairs(grid, [(2, 1.0), (2, 2.0)])
        assert series.value_at(2) == 3.0

    def test_from_pairs_empty(self, grid):
        series = TimeSeries.from_pairs(grid, [])
        assert len(series) == 0


class TestAccess:
    def test_end_slot(self, ramp_series):
        assert ramp_series.end_slot == 24

    def test_slots_range(self, ramp_series):
        assert list(ramp_series.slots) == list(range(24))

    def test_start_and_end_time(self, ramp_series, grid):
        assert ramp_series.start_time() == grid.to_datetime(0)
        assert ramp_series.end_time() == grid.to_datetime(24)

    def test_value_at_out_of_range_returns_default(self, ramp_series):
        assert ramp_series.value_at(1000, default=-1.0) == -1.0

    def test_to_pairs_roundtrip(self, ramp_series, grid):
        rebuilt = TimeSeries.from_pairs(grid, ramp_series.to_pairs())
        assert np.allclose(rebuilt.values, ramp_series.values)

    def test_copy_is_independent(self, ramp_series):
        clone = ramp_series.copy(name="clone")
        clone.values[0] = 99.0
        assert ramp_series.values[0] == 0.0
        assert clone.name == "clone"

    def test_iteration(self, grid):
        series = TimeSeries(grid, 0, [1.0, 2.0])
        assert list(series) == [1.0, 2.0]


class TestArithmetic:
    def test_add_aligned(self, grid):
        a = TimeSeries(grid, 0, [1, 2, 3])
        b = TimeSeries(grid, 0, [10, 10, 10])
        assert (a + b).values.tolist() == [11, 12, 13]

    def test_add_with_offset_pads_zeros(self, grid):
        a = TimeSeries(grid, 0, [1, 1])
        b = TimeSeries(grid, 3, [2, 2])
        total = a + b
        assert total.start_slot == 0
        assert total.values.tolist() == [1, 1, 0, 2, 2]

    def test_subtract(self, grid):
        a = TimeSeries(grid, 0, [5, 5])
        b = TimeSeries(grid, 0, [2, 3])
        assert (a - b).values.tolist() == [3, 2]

    def test_add_scalar(self, grid):
        a = TimeSeries(grid, 0, [1, 2])
        assert (a + 1.0).values.tolist() == [2, 3]

    def test_multiply_scalar(self, grid):
        a = TimeSeries(grid, 0, [1, 2])
        assert (2 * a).values.tolist() == [2, 4]

    def test_negate(self, grid):
        a = TimeSeries(grid, 0, [1, -2])
        assert (-a).values.tolist() == [-1, 2]

    def test_clip(self, grid):
        a = TimeSeries(grid, 0, [-1, 0.5, 2])
        assert a.clip(0.0, 1.0).values.tolist() == [0.0, 0.5, 1.0]

    def test_incompatible_grids_raise(self, grid, hour_grid):
        a = TimeSeries(grid, 0, [1])
        b = TimeSeries(hour_grid, 0, [1])
        with pytest.raises(TimeGridError):
            a + b

    def test_add_series_on_shifted_origin(self, grid):
        from datetime import timedelta

        shifted = TimeGrid(origin=grid.origin + timedelta(minutes=30))
        a = TimeSeries(grid, 0, [1, 1, 1, 1])
        b = TimeSeries(shifted, 0, [1, 1])  # starts 2 slots later in absolute time
        total = a + b
        assert total.values.tolist() == [1, 1, 2, 2]


class TestSlicing:
    def test_slice_inside(self, ramp_series):
        part = ramp_series.slice_slots(5, 10)
        assert part.start_slot == 5
        assert part.values.tolist() == [5, 6, 7, 8, 9]

    def test_slice_beyond_range_pads_zeros(self, ramp_series):
        part = ramp_series.slice_slots(20, 30)
        assert len(part) == 10
        assert part.values[:4].tolist() == [20, 21, 22, 23]
        assert part.values[4:].tolist() == [0] * 6

    def test_slice_reversed_raises(self, ramp_series):
        with pytest.raises(TimeGridError):
            ramp_series.slice_slots(10, 5)

    def test_slice_time(self, ramp_series, grid):
        part = ramp_series.slice_time(grid.to_datetime(2), grid.to_datetime(4))
        assert part.values.tolist() == [2, 3]


class TestStatisticsAndAccumulate:
    def test_total_mean_min_max(self, grid):
        series = TimeSeries(grid, 0, [1, 2, 3, 4])
        assert series.total() == 10
        assert series.mean() == 2.5
        assert series.minimum() == 1
        assert series.maximum() == 4

    def test_statistics_of_empty_series(self, grid):
        series = TimeSeries(grid, 0, [])
        assert series.total() == 0.0
        assert series.mean() == 0.0

    def test_absolute(self, grid):
        series = TimeSeries(grid, 0, [-1, 2, -3])
        assert series.absolute().values.tolist() == [1, 2, 3]

    def test_accumulate_sums_all(self, grid):
        parts = [TimeSeries(grid, i, [1.0, 1.0]) for i in range(3)]
        total = accumulate(parts, grid, name="total")
        assert total.total() == 6.0
        assert total.name == "total"

    def test_accumulate_empty_returns_empty(self, grid):
        total = accumulate([], grid, name="empty")
        assert len(total) == 0

"""Tests for the aggregation panel, the loading workflow and the framework facade."""

from __future__ import annotations

from datetime import timedelta

import pytest

from repro.aggregation.parameters import AggregationParameters
from repro.errors import ViewError
from repro.views.aggregation_panel import AggregationPanel, AggregationPanelView
from repro.views.framework import ViewKind, VisualAnalysisFramework
from repro.views.loading import LoadingWorkflow
from repro.views.selection import SelectionRectangle
from repro.warehouse.loader import load_scenario
from repro.warehouse.query import FlexOfferFilter, FlexOfferRepository


class TestAggregationPanel:
    @pytest.fixture
    def panel(self, scenario):
        return AggregationPanel(scenario.flex_offers, scenario.grid)

    def test_aggregation_reduces_displayed_offers(self, panel, scenario):
        assert len(panel.aggregated_offers()) <= len(scenario.flex_offers)

    def test_metrics_reduction_at_least_one(self, panel):
        assert panel.metrics().reduction_ratio >= 1.0

    def test_tune_invalidates_cache(self, panel):
        first = panel.metrics()
        panel.tune(est_tolerance_slots=32, time_flexibility_tolerance_slots=32)
        second = panel.metrics()
        assert second.aggregated_count <= first.aggregated_count

    def test_sweep_is_monotone_in_est_tolerance(self, panel):
        points = panel.sweep(est_tolerances=[1, 4, 16], time_flexibility_tolerances=[4])
        counts = [point.metrics.aggregated_count for point in points]
        assert counts == sorted(counts, reverse=True)

    def test_sweep_requires_values(self, panel):
        with pytest.raises(ViewError):
            panel.sweep(est_tolerances=[], time_flexibility_tolerances=[4])

    def test_disaggregate_all_restores_individuals(self, scenario):
        scheduled = [offer.with_default_schedule() if offer.schedule is None and offer.state.value != "rejected" else offer for offer in scenario.flex_offers]
        panel = AggregationPanel(scheduled, scenario.grid, AggregationParameters(est_tolerance_slots=8, time_flexibility_tolerance_slots=8))
        aggregated = panel.aggregated_offers()
        # Give aggregates a schedule so they can be disaggregated.
        with_schedules = [
            offer.with_default_schedule() if offer.is_aggregate else offer for offer in aggregated
        ]
        panel._result.offers = with_schedules  # simulate the scheduler writing back
        individuals = panel.disaggregate_all()
        assert len(individuals) >= len(aggregated)
        assert not any(offer.is_aggregate for offer in individuals if offer.constituent_ids == ())

    def test_before_after_views(self, panel, scenario):
        before = panel.before_view()
        after = panel.after_view()
        assert len(before.offers) == len(scenario.flex_offers)
        assert len(after.offers) == len(panel.aggregated_offers())

    def test_panel_view_renders_caption(self, panel):
        svg = AggregationPanelView(panel).to_svg()
        assert "aggregation:" in svg
        assert "EST tol=" in svg


class TestLoadingWorkflow:
    @pytest.fixture(scope="class")
    def workflow(self, scenario):
        schema = load_scenario(scenario)
        return LoadingWorkflow(FlexOfferRepository(schema, scenario.grid), scenario.grid)

    def test_entities_listed(self, workflow, scenario):
        assert len(workflow.available_entities()) == len(scenario.prosumers)

    def test_states_listed(self, workflow):
        assert set(workflow.available_states()) <= {"offered", "accepted", "assigned", "rejected", "executed"}

    def test_load_entity(self, workflow, scenario):
        prosumer = scenario.prosumers[0]
        dataset = workflow.load_entity(prosumer.id)
        assert len(dataset) == len(scenario.offers_of_prosumer(prosumer.id))
        assert dataset.title.startswith("entity")

    def test_load_entity_with_interval(self, workflow, scenario):
        prosumer = scenario.prosumers[0]
        start = scenario.grid.origin
        end = start + timedelta(hours=6)
        dataset = workflow.load_entity(prosumer.id, start, end)
        for offer in dataset.offers:
            assert scenario.grid.to_datetime(offer.earliest_start_slot) < end

    def test_unknown_entity_raises(self, workflow):
        with pytest.raises(ViewError):
            workflow.load_entity(999_999)

    def test_load_filtered(self, workflow, scenario):
        dataset = workflow.load_filtered(FlexOfferFilter(regions=("Capital",)))
        assert all(offer.region == "Capital" for offer in dataset.offers)

    def test_load_all_and_history(self, workflow, scenario):
        before = len(workflow.history)
        dataset = workflow.load_all()
        assert len(dataset) == len(scenario.flex_offers)
        assert len(workflow.history) == before + 1

    def test_warehouse_summary(self, workflow, scenario):
        assert workflow.warehouse_summary()["offer_count"] == len(scenario.flex_offers)


class TestFramework:
    @pytest.fixture
    def framework(self, scenario):
        return VisualAnalysisFramework(scenario)

    def test_open_tab_for_all(self, framework, scenario):
        tab = framework.open_tab_for_all()
        assert len(tab.offers) == len(scenario.flex_offers)
        assert framework.tab_titles == ["all flex-offers"]

    def test_open_tab_for_entity(self, framework, scenario):
        prosumer = scenario.prosumers[0]
        tab = framework.open_tab_for_entity(prosumer.id)
        assert all(offer.prosumer_id == prosumer.id for offer in tab.offers)

    def test_switch_all_view_kinds(self, framework):
        tab = framework.open_tab_for_all()
        for kind in ViewKind:
            tab.switch_view(kind)
            assert "<svg" in tab.view().to_svg()

    def test_details_lookup(self, framework):
        tab = framework.open_tab_for_all()
        details = tab.details_of(tab.offers[0].id)
        assert details.offer_id == tab.offers[0].id
        with pytest.raises(ViewError):
            tab.details_of(123_456_789)

    def test_apply_aggregation_shrinks_tab(self, framework):
        tab = framework.open_tab_for_all()
        original = len(tab.offers)
        tab.apply_aggregation(AggregationParameters(est_tolerance_slots=8, time_flexibility_tolerance_slots=8))
        assert len(tab.offers) <= original

    def test_selection_extract_and_remove(self, framework):
        tab = framework.open_tab_for_all()
        view = tab.view()
        area = view.options.plot_area
        tab.selection.select_rectangle(view, SelectionRectangle(area.left, area.top, area.left + 200, area.bottom))
        selected = len(tab.selection)
        assert selected > 0
        new_tab = tab.extract_selection()
        assert len(new_tab.offers) == selected
        tab.remove_selection()
        assert len(tab.offers) + selected == len(framework.scenario.flex_offers)

    def test_close_tab(self, framework):
        tab = framework.open_tab_for_all()
        framework.close_tab(tab)
        assert framework.tab_titles == []

    def test_open_tab_for_offers(self, framework, scenario):
        tab = framework.open_tab_for_offers(scenario.flex_offers[:5], title="subset", kind=ViewKind.PROFILE)
        assert tab.title == "subset"
        assert len(tab.offers) == 5
        assert "<svg" in tab.view().to_svg()

"""Shared fixtures for the test suite.

The numpy-native layers (datagen, time series) are imported lazily inside
their fixtures: the no-numpy CI leg runs the pure-Python fallback suites with
numpy uninstalled, and any test that genuinely needs a generated scenario or
a ``TimeSeries`` skips there instead of failing collection.
"""

from __future__ import annotations

import os
from datetime import timedelta
from typing import TYPE_CHECKING

import pytest
from hypothesis import settings as hypothesis_settings

from repro.flexoffer.model import Direction, FlexOffer, ProfileSlice, Schedule
from repro.timeseries.grid import TimeGrid

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.datagen.scenarios import Scenario
    from repro.timeseries.series import TimeSeries

# Property-test example budgets, selected via HYPOTHESIS_PROFILE: "dev" keeps
# the local suite fast, "ci" is the default pull-request budget, "extended" is
# the scheduled CI job's raised budget for the equivalence contract.
hypothesis_settings.register_profile("dev", max_examples=25, deadline=None)
hypothesis_settings.register_profile("ci", max_examples=50, deadline=None)
hypothesis_settings.register_profile("extended", max_examples=300, deadline=None)
hypothesis_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture(scope="session")
def grid() -> TimeGrid:
    """The default 15-minute grid anchored at 2012-02-01."""
    return TimeGrid()


@pytest.fixture(scope="session")
def hour_grid() -> TimeGrid:
    """An hourly grid sharing the default origin."""
    return TimeGrid(resolution=timedelta(hours=1))


def make_offer(
    offer_id: int = 1,
    earliest_start: int = 40,
    time_flexibility: int = 8,
    profile=((1.0, 2.0), (1.5, 3.0), (0.5, 0.5)),
    direction: Direction = Direction.CONSUMPTION,
    schedule: Schedule | None = None,
    **attributes,
) -> FlexOffer:
    """Build a small, valid flex-offer for tests."""
    grid = TimeGrid()
    start_time = grid.to_datetime(earliest_start)
    return FlexOffer(
        id=offer_id,
        prosumer_id=attributes.pop("prosumer_id", 7),
        profile=tuple(ProfileSlice(low, high) for low, high in profile),
        earliest_start_slot=earliest_start,
        latest_start_slot=earliest_start + time_flexibility,
        creation_time=start_time - timedelta(hours=4),
        acceptance_deadline=start_time - timedelta(hours=2),
        assignment_deadline=start_time - timedelta(hours=1),
        direction=direction,
        schedule=schedule,
        region=attributes.pop("region", "Capital"),
        city=attributes.pop("city", "Copenhagen"),
        district=attributes.pop("district", "Copenhagen Centrum"),
        grid_node=attributes.pop("grid_node", "F Copenhagen Centrum"),
        energy_type=attributes.pop("energy_type", "grid"),
        prosumer_type=attributes.pop("prosumer_type", "household"),
        appliance_type=attributes.pop("appliance_type", "electric_vehicle"),
        **attributes,
    )


@pytest.fixture
def sample_offer() -> FlexOffer:
    """One plain flex-offer."""
    return make_offer()


@pytest.fixture
def scheduled_offer() -> FlexOffer:
    """A flex-offer with a valid schedule attached."""
    offer = make_offer(offer_id=2)
    return offer.assign(Schedule(start_slot=42, energy_per_slice=(1.5, 2.0, 0.5)))


@pytest.fixture
def offer_batch() -> list[FlexOffer]:
    """A small, diverse batch of flex-offers spanning several attributes."""
    offers = []
    regions = ["Capital", "Zealand", "North Jutland"]
    appliances = ["electric_vehicle", "heat_pump", "dishwasher"]
    for index in range(12):
        offer = make_offer(
            offer_id=index + 1,
            earliest_start=30 + 4 * index,
            time_flexibility=4 + (index % 5),
            region=regions[index % 3],
            city=["Copenhagen", "Roskilde", "Aalborg"][index % 3],
            appliance_type=appliances[index % 3],
            prosumer_type=["household", "commercial"][index % 2],
            prosumer_id=index % 4 + 1,
        )
        if index % 3 == 0:
            offer = offer.assign(
                Schedule(
                    start_slot=offer.earliest_start_slot + 1,
                    energy_per_slice=tuple(piece.min_energy for piece in offer.profile),
                )
            )
        elif index % 3 == 1:
            offer = offer.accept()
        else:
            offer = offer.reject()
        offers.append(offer)
    return offers


@pytest.fixture(scope="session")
def scenario() -> Scenario:
    """A small but complete synthetic scenario (shared across the session)."""
    scenarios = pytest.importorskip(
        "repro.datagen.scenarios", reason="scenario generation needs numpy", exc_type=ImportError
    )
    return scenarios.generate_scenario(
        scenarios.ScenarioConfig(prosumer_count=60, offers_per_prosumer=1.4, seed=5)
    )


@pytest.fixture(scope="session")
def large_scenario() -> Scenario:
    """A larger scenario for integration-style tests."""
    scenarios = pytest.importorskip(
        "repro.datagen.scenarios", reason="scenario generation needs numpy", exc_type=ImportError
    )
    return scenarios.generate_scenario(scenarios.ScenarioConfig(prosumer_count=150, seed=9))


@pytest.fixture
def ramp_series(grid: TimeGrid) -> TimeSeries:
    """A simple increasing series 0..23 over 24 slots."""
    series = pytest.importorskip(
        "repro.timeseries.series", reason="TimeSeries needs numpy", exc_type=ImportError
    )
    return series.TimeSeries(grid, 0, list(range(24)), name="ramp", unit="kWh")

"""Property tests for the engine interchangeability contract — all four engines.

One :class:`~repro.session.QuerySpec` executed against the
:class:`~repro.session.BatchEngine` and any live-family engine
(:class:`~repro.session.LiveEngine`, :class:`~repro.session.ShardedEngine`,
:class:`~repro.session.AsyncEngine`) over the same offer population must
return equivalent :class:`~repro.session.ResultSet` envelopes: the same
offers for raw reads, and — when the spec aggregates — outputs whose profiles
are bit-identical, ids modulo :func:`~repro.live.engine.canonical_form`.

The hypothesis example budget is profile-controlled (see ``tests/conftest.py``);
CI's scheduled job raises it via ``HYPOTHESIS_PROFILE=extended``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregation.parameters import AggregationParameters
from repro.datagen.scenarios import ScenarioConfig, generate_scenario
from repro.live.replay import scenario_event_stream
from repro.session import FlexSession, QuerySpec

#: Every live-family engine the contract covers (batch is the reference).
STREAM_ENGINES = ("live", "sharded", "async")

#: Shared read-only sessions; module-level so hypothesis examples reuse them.
_SCENARIO = generate_scenario(ScenarioConfig(prosumer_count=50, seed=11))
_BATCH = FlexSession(_SCENARIO, engine="batch")
_STREAMS = {name: FlexSession(_SCENARIO, engine=name) for name in STREAM_ENGINES}

_REGIONS = sorted({offer.region for offer in _SCENARIO.flex_offers})
_GRID_NODES = sorted({offer.grid_node for offer in _SCENARIO.flex_offers})
_STATES = ("offered", "accepted", "assigned", "rejected")
_PROSUMERS = sorted({offer.prosumer_id for offer in _SCENARIO.flex_offers})


def _subset(values, max_size=3):
    return st.none() | st.lists(
        st.sampled_from(values), min_size=1, max_size=max_size, unique=True
    ).map(tuple)


@st.composite
def specs(draw):
    parameters = draw(
        st.none()
        | st.builds(
            AggregationParameters,
            est_tolerance_slots=st.sampled_from([2, 4, 8]),
            time_flexibility_tolerance_slots=st.sampled_from([4, 8]),
            max_group_size=st.sampled_from([0, 3]),
        )
    )
    interval = draw(st.none() | st.tuples(st.integers(0, 48), st.integers(8, 48)))
    interval_start = interval_end = None
    if interval is not None:
        start_slot, width = interval
        interval_start = _SCENARIO.grid.to_datetime(start_slot)
        interval_end = _SCENARIO.grid.to_datetime(start_slot + width)
    return QuerySpec.build(
        prosumer_ids=draw(_subset(_PROSUMERS, max_size=5)),
        regions=draw(_subset(_REGIONS)),
        grid_nodes=draw(_subset(_GRID_NODES)),
        states=draw(_subset(_STATES)),
        interval_start=interval_start,
        interval_end=interval_end,
        parameters=parameters,
    )


@pytest.mark.parametrize("engine", STREAM_ENGINES)
@given(spec=specs())
@settings(deadline=None)
def test_same_spec_same_resultset_on_every_engine(engine, spec):
    """The headline contract: one spec, any engine, equivalent result sets."""
    batch_result = _BATCH.query(spec)
    stream_result = _STREAMS[engine].query(spec)
    assert batch_result.matches(stream_result), (
        f"engines disagree on {spec.describe()!r}: "
        f"batch={len(batch_result)} {engine}={len(stream_result)}"
    )
    # Raw reads must agree exactly (ids included), not just canonically.
    if spec.parameters is None:
        assert sorted(o.id for o in batch_result) == sorted(o.id for o in stream_result)

    # Aggregate profiles are bit-identical: canonical() keeps profiles
    # untouched, so multiset equality implies per-slice float equality.
    def profile_key(offer):
        return tuple(
            (piece.min_energy, piece.max_energy, piece.duration_slots)
            for piece in offer.profile
        )

    batch_profiles = sorted(profile_key(offer) for offer in batch_result.aggregates)
    stream_profiles = sorted(profile_key(offer) for offer in stream_result.aggregates)
    assert batch_profiles == stream_profiles


@pytest.mark.parametrize("engine", STREAM_ENGINES)
@given(spec=specs())
@settings(deadline=None)
def test_mutated_stream_stays_interchangeable(engine, spec):
    """After revisions and withdrawals the surviving populations still agree."""
    assert _mutated_pairs  # built once below
    stream, batch = _mutated_pairs[engine]
    assert batch.query(spec).matches(stream.query(spec))


def _build_mutated_pair(engine):
    scenario = generate_scenario(ScenarioConfig(prosumer_count=40, seed=7))
    stream = FlexSession(scenario, engine=engine, live_preload=False)
    log = scenario_event_stream(
        scenario, update_fraction=0.2, withdraw_fraction=0.1, seed=3
    )
    stream.replay(log)
    # A batch snapshot over exactly the offers that survived the stream.
    surviving = scenario.replace_offers(stream.engine.offers())
    batch = FlexSession(surviving, engine="batch")
    return stream, batch


_mutated_pairs = {name: _build_mutated_pair(name) for name in STREAM_ENGINES}


@pytest.mark.parametrize("engine", ("live", "sharded"))
def test_fast_path_serves_committed_state(engine):
    """The default-parameter whole-population aggregation is the committed state."""
    session = _STREAMS[engine]
    backend = session.engine
    result = session.offers().aggregate().fetch()
    committed = backend.engine.aggregated_offers()
    assert sorted(o.id for o in result) == sorted(o.id for o in committed)


def test_async_flush_barrier_makes_reads_deterministic():
    """Events queued through the async engine are visible after the flush barrier.

    Ingest returns immediately (commits happen on the worker); the refresh /
    flush barrier inside the read path must surface every queued event, so a
    query right after a burst of ingests sees the synchronous engines' state.
    """
    from repro.live.events import OfferWithdrawn

    scenario = generate_scenario(ScenarioConfig(prosumer_count=30, seed=23))
    session = FlexSession(scenario, engine="async")
    population = session.engine.offers()
    victims = [offer for offer in population if not offer.is_aggregate][:7]
    for victim in victims:
        assert session.ingest(OfferWithdrawn(victim.creation_time, victim.id)) is None
    # The read path flushes: every withdrawal is applied, committed, mirrored.
    result = session.query(QuerySpec())
    assert len(result) == len(population) - len(victims)
    surviving = scenario.replace_offers(session.engine.offers())
    batch = FlexSession(surviving, engine="batch")
    spec = QuerySpec.build(parameters=AggregationParameters())
    assert batch.query(spec).matches(session.query(spec))
    # And the commit log shows real background commits, not caller-side ones.
    assert session.engine.engine.commit_count >= 1


def test_scanned_rows_reflect_index_planning():
    """Every engine plans state/grid-node filters through the hash indexes."""
    for session in (_BATCH, *_STREAMS.values()):
        result = session.query(QuerySpec.build(state="assigned"))
        assert result.scanned_rows <= result.matched_rows + 1  # passthroughs may add
        full = session.query(QuerySpec())
        assert result.scanned_rows < full.matched_rows

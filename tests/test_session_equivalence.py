"""Property tests for the batch≡live interchangeability contract.

One :class:`~repro.session.QuerySpec` executed against the
:class:`~repro.session.BatchEngine` and the :class:`~repro.session.LiveEngine`
over the same offer population must return equivalent
:class:`~repro.session.ResultSet` envelopes: the same offers for raw reads,
and — when the spec aggregates — outputs whose profiles are bit-identical,
ids modulo :func:`~repro.live.engine.canonical_form`.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregation.parameters import AggregationParameters
from repro.datagen.scenarios import ScenarioConfig, generate_scenario
from repro.live.replay import scenario_event_stream
from repro.session import FlexSession, QuerySpec

#: Shared read-only sessions; module-level so hypothesis examples reuse them.
_SCENARIO = generate_scenario(ScenarioConfig(prosumer_count=50, seed=11))
_BATCH = FlexSession(_SCENARIO, engine="batch")
_LIVE = FlexSession(_SCENARIO, engine="live")

_REGIONS = sorted({offer.region for offer in _SCENARIO.flex_offers})
_GRID_NODES = sorted({offer.grid_node for offer in _SCENARIO.flex_offers})
_STATES = ("offered", "accepted", "assigned", "rejected")
_PROSUMERS = sorted({offer.prosumer_id for offer in _SCENARIO.flex_offers})


def _subset(values, max_size=3):
    return st.none() | st.lists(
        st.sampled_from(values), min_size=1, max_size=max_size, unique=True
    ).map(tuple)


@st.composite
def specs(draw):
    parameters = draw(
        st.none()
        | st.builds(
            AggregationParameters,
            est_tolerance_slots=st.sampled_from([2, 4, 8]),
            time_flexibility_tolerance_slots=st.sampled_from([4, 8]),
            max_group_size=st.sampled_from([0, 3]),
        )
    )
    interval = draw(st.none() | st.tuples(st.integers(0, 48), st.integers(8, 48)))
    interval_start = interval_end = None
    if interval is not None:
        start_slot, width = interval
        interval_start = _SCENARIO.grid.to_datetime(start_slot)
        interval_end = _SCENARIO.grid.to_datetime(start_slot + width)
    return QuerySpec.build(
        prosumer_ids=draw(_subset(_PROSUMERS, max_size=5)),
        regions=draw(_subset(_REGIONS)),
        grid_nodes=draw(_subset(_GRID_NODES)),
        states=draw(_subset(_STATES)),
        interval_start=interval_start,
        interval_end=interval_end,
        parameters=parameters,
    )


@given(spec=specs())
@settings(max_examples=50, deadline=None)
def test_same_spec_same_resultset_on_both_engines(spec):
    """The headline contract: one spec, two engines, equivalent result sets."""
    batch_result = _BATCH.query(spec)
    live_result = _LIVE.query(spec)
    assert batch_result.matches(live_result), (
        f"engines disagree on {spec.describe()!r}: "
        f"batch={len(batch_result)} live={len(live_result)}"
    )
    # Raw reads must agree exactly (ids included), not just canonically.
    if spec.parameters is None:
        assert sorted(o.id for o in batch_result) == sorted(o.id for o in live_result)
    # Aggregate profiles are bit-identical: canonical() keeps profiles
    # untouched, so multiset equality implies per-slice float equality.
    def profile_key(offer):
        return tuple(
            (piece.min_energy, piece.max_energy, piece.duration_slots)
            for piece in offer.profile
        )

    batch_profiles = sorted(profile_key(offer) for offer in batch_result.aggregates)
    live_profiles = sorted(profile_key(offer) for offer in live_result.aggregates)
    assert batch_profiles == live_profiles


@given(spec=specs())
@settings(max_examples=15, deadline=None)
def test_mutated_stream_stays_interchangeable(spec):
    """After revisions and withdrawals the surviving populations still agree."""
    assert _mutated_pair  # built once below
    live, batch = _mutated_pair
    assert batch.query(spec).matches(live.query(spec))


def _build_mutated_pair():
    scenario = generate_scenario(ScenarioConfig(prosumer_count=40, seed=7))
    live = FlexSession(scenario, engine="live", live_preload=False)
    log = scenario_event_stream(
        scenario, update_fraction=0.2, withdraw_fraction=0.1, seed=3
    )
    live.replay(log)
    # A batch snapshot over exactly the offers that survived the stream.
    surviving = scenario.replace_offers(live.engine.offers())
    batch = FlexSession(surviving, engine="batch")
    return live, batch


_mutated_pair = _build_mutated_pair()


def test_live_fast_path_serves_committed_state():
    """The default-parameter whole-population aggregation is the committed state."""
    backend = _LIVE.engine
    result = _LIVE.offers().aggregate().fetch()
    committed = backend.engine.aggregated_offers()
    assert sorted(o.id for o in result) == sorted(o.id for o in committed)


def test_scanned_rows_reflect_index_planning():
    """Both engines plan state/grid-node filters through the hash indexes."""
    for session in (_BATCH, _LIVE):
        result = session.query(QuerySpec.build(state="assigned"))
        assert result.scanned_rows <= result.matched_rows + 1  # passthroughs may add
        full = session.query(QuerySpec())
        assert result.scanned_rows < full.matched_rows

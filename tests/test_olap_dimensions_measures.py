"""Tests for OLAP dimensions, hierarchies and the Req.-2 measures."""

from __future__ import annotations

import pytest

from repro.errors import UnknownDimensionError, UnknownMeasureError
from repro.flexoffer.model import Direction, FlexOfferState
from repro.olap.dimension import (
    appliance_dimension,
    geography_dimension,
    grid_dimension,
    prosumer_dimension,
    standard_dimensions,
    state_dimension,
    time_dimension,
)
from repro.olap.measures import STANDARD_MEASURES, MeasureContext, get_measure
from tests.conftest import make_offer


class TestDimensions:
    def test_standard_dimensions_present(self, grid):
        dimensions = standard_dimensions(grid)
        assert set(dimensions) == {
            "Time",
            "Geography",
            "Grid",
            "EnergyType",
            "Prosumer",
            "Appliance",
            "State",
        }

    def test_every_dimension_starts_with_all_level(self, grid):
        for dimension in standard_dimensions(grid).values():
            assert dimension.levels[0].name == "all"

    def test_geography_hierarchy_order(self):
        assert geography_dimension().level_names() == ["all", "region", "city", "district"]

    def test_time_levels_derive_from_grid(self, grid):
        dimension = time_dimension(grid)
        offer = make_offer(earliest_start=50)  # 12:30 on 2012-02-01
        assert dimension.level("day").member_of(offer) == "2012-02-01"
        assert dimension.level("hour").member_of(offer) == "2012-02-01 12:00"
        assert dimension.level("month").member_of(offer) == "2012-02"
        assert dimension.level("slot").member_of(offer) == 50

    def test_unknown_level_raises(self):
        with pytest.raises(UnknownDimensionError):
            geography_dimension().level("galaxy")

    def test_drill_down_and_up(self):
        dimension = geography_dimension()
        assert dimension.drill_down_level("region").name == "city"
        assert dimension.drill_up_level("city").name == "region"
        assert dimension.drill_down_level("district") is None
        assert dimension.drill_up_level("all") is None

    def test_members_enumeration(self):
        offers = [make_offer(offer_id=1, region="Capital"), make_offer(offer_id=2, region="Zealand")]
        assert geography_dimension().members("region", offers) == ["Capital", "Zealand"]

    def test_prosumer_role_level(self):
        consumer = make_offer(offer_id=1)
        producer = make_offer(offer_id=2, direction=Direction.PRODUCTION)
        level = prosumer_dimension().level("role")
        assert level.member_of(consumer) == "Consumer"
        assert level.member_of(producer) == "Producer"

    def test_state_dimension(self):
        offer = make_offer().accept()
        assert state_dimension().level("state").member_of(offer) == "accepted"

    def test_appliance_dimension_unknown_fallback(self):
        offer = make_offer(appliance_type="")
        assert appliance_dimension().level("appliance_type").member_of(offer) == "(unknown)"

    def test_grid_dimension_with_topology(self, scenario):
        dimension = grid_dimension(scenario.topology)
        offer = scenario.flex_offers[0]
        feeder = dimension.level("feeder").member_of(offer)
        distribution = dimension.level("distribution").member_of(offer)
        transmission = dimension.level("transmission").member_of(offer)
        assert feeder.startswith("F ")
        assert distribution.startswith("DS ")
        assert transmission.startswith("TX ")

    def test_grid_dimension_without_topology_falls_back(self):
        dimension = grid_dimension(None)
        offer = make_offer()
        assert dimension.level("distribution").member_of(offer) == "DS Copenhagen"
        assert dimension.level("transmission").member_of(offer) == "TX Capital"


class TestMeasures:
    def test_all_required_measures_registered(self):
        for name in (
            "flex_offer_count",
            "accepted_count",
            "assigned_count",
            "rejected_count",
            "scheduled_energy",
            "plan_deviation",
            "balancing_potential",
            "avg_price",
            "min_energy",
            "max_energy",
        ):
            assert name in STANDARD_MEASURES

    def test_unknown_measure_raises(self):
        with pytest.raises(UnknownMeasureError):
            get_measure("happiness")

    def test_count_measures(self, offer_batch):
        assert get_measure("flex_offer_count")(offer_batch) == len(offer_batch)
        accepted = sum(1 for o in offer_batch if o.state is FlexOfferState.ACCEPTED)
        assert get_measure("accepted_count")(offer_batch) == accepted

    def test_attribute_measures(self, offer_batch):
        assert get_measure("min_energy")(offer_batch) == pytest.approx(
            min(o.min_total_energy for o in offer_batch)
        )
        assert get_measure("max_energy")(offer_batch) == pytest.approx(
            max(o.max_total_energy for o in offer_batch)
        )
        assert get_measure("total_energy")(offer_batch) == pytest.approx(
            sum(o.max_total_energy for o in offer_batch)
        )

    def test_measures_on_empty_group_are_zero(self):
        for name, measure in STANDARD_MEASURES.items():
            assert measure([]) == 0.0, name

    def test_scheduled_energy_measure(self, offer_batch):
        expected = sum(o.scheduled_energy for o in offer_batch)
        assert get_measure("scheduled_energy")(offer_batch) == pytest.approx(expected)

    def test_plan_deviation_zero_without_context(self, offer_batch):
        assert get_measure("plan_deviation")(offer_batch) == 0.0

    def test_plan_deviation_with_context(self, offer_batch):
        assigned = [o for o in offer_batch if o.schedule is not None]
        context = MeasureContext(realized_energy={assigned[0].id: assigned[0].scheduled_energy + 2.0})
        assert get_measure("plan_deviation")(offer_batch, context) == pytest.approx(2.0)

    def test_balancing_potential_in_unit_interval(self, offer_batch):
        value = get_measure("balancing_potential")(offer_batch)
        assert 0.0 <= value <= 1.0

    def test_avg_time_flexibility(self, offer_batch):
        expected = sum(o.time_flexibility_slots for o in offer_batch) / len(offer_batch)
        assert get_measure("avg_time_flexibility")(offer_batch) == pytest.approx(expected)

"""The versioned read path: snapshots, the result cache and historical reads.

Three contracts from ISSUE 7:

* **Versioned reads rebuild exactly** — ``query(at_version=v)`` is equivalent
  to the batch pipeline rebuilt over the population that was committed at
  version ``v``, for every live-family engine.
* **Cache invalidation is cell-exact** — a commit touching only cells outside
  a cached entry's read set carries the entry (same object, a hit); a commit
  touching its cells drops it.
* **The ring is bounded but pin-safe** — eviction keeps ``retain`` versions,
  never the latest or a pinned one; pins release their excess on exit.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.datagen.scenarios import ScenarioConfig, generate_scenario
from repro.errors import ReadPathError, SessionError
from repro.live.events import OfferWithdrawn
from repro.live.replay import scenario_event_stream
from repro.readpath import SnapshotManager
from repro.session import FlexSession
from repro.session.engines import BatchEngine
from repro.session.query import execute
from repro.session.spec import QuerySpec
from repro.store.recovery import RecoveryManager

LIVE_ENGINES = ("live", "sharded", "async")


@pytest.fixture(scope="module")
def small_scenario():
    return generate_scenario(ScenarioConfig(prosumer_count=30, seed=13))


def _mutated_events(scenario, seed=5):
    log = scenario_event_stream(
        scenario, update_fraction=0.3, withdraw_fraction=0.2, seed=seed
    )
    return log.replay_order()


# ----------------------------------------------------------------------
# Historical reads rebuild exactly
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", LIVE_ENGINES)
def test_at_version_matches_batch_rebuild_at_that_commit(engine, small_scenario):
    """Every retained version answers like a batch engine over that commit's
    population — raw ids exactly, aggregation profiles modulo canonical form."""
    with FlexSession(small_scenario, engine=engine, live_preload=False) as session:
        backend = session.engine
        backend.readpath.manager.retain = 512  # keep every version for the test
        events = _mutated_events(small_scenario)
        populations = {}
        chunk = max(1, len(events) // 6)
        for start in range(0, len(events), chunk):
            session.ingest_many(events[start : start + chunk])
            session.commit()
            backend.refresh()
            version = backend.readpath.manager.latest_version
            populations[version] = list(backend.offers())
        assert len(populations) >= 4
        raw_spec = QuerySpec()
        filtered_spec = QuerySpec.build(state="assigned")
        agg_spec = QuerySpec.build(parameters=session.parameters)
        for version, offers in populations.items():
            batch = BatchEngine(
                small_scenario.replace_offers(offers), session.parameters
            )
            for spec in (raw_spec, filtered_spec, agg_spec):
                expected = execute(batch, session.grid, spec)
                observed = session.query(spec, at_version=version)
                assert observed.version == version
                assert observed.matches(expected), (
                    f"version {version} diverges from its batch rebuild for "
                    f"{spec.describe() or 'all offers'}"
                )
                if spec.parameters is None:
                    assert sorted(o.id for o in observed) == sorted(
                        o.id for o in expected
                    )


def test_at_version_is_immune_to_later_commits(small_scenario):
    """A pinned-version read keeps answering the old state after new commits."""
    with FlexSession(small_scenario, engine="live") as session:
        backend = session.engine
        version = backend.readpath.manager.latest_version
        before = session.query(QuerySpec(), at_version=version)
        victim = backend.offers()[0]
        session.ingest(OfferWithdrawn(victim.creation_time, victim.id))
        session.commit()
        after = session.query(QuerySpec(), at_version=version)
        assert sorted(o.id for o in after) == sorted(o.id for o in before)
        assert victim.id in {o.id for o in after}
        latest = session.query(QuerySpec())
        assert victim.id not in {o.id for o in latest}
        assert latest.version > version


# ----------------------------------------------------------------------
# The query front door
# ----------------------------------------------------------------------
def test_query_modes_and_errors(small_scenario):
    with FlexSession(small_scenario, engine="live") as session:
        live_result = session.query(QuerySpec(), consistency="live")
        assert live_result.version is None  # direct path bypasses versioning
        snapshot_result = session.query(QuerySpec())
        assert snapshot_result.version is not None
        with pytest.raises(SessionError):
            session.query(QuerySpec(), consistency="eventually")
        with pytest.raises(ReadPathError):
            session.query(QuerySpec(), at_version=10_000)
        session.use_engine("batch")
        with pytest.raises(SessionError):
            session.query(QuerySpec(), at_version=0)


def test_latest_consistency_does_not_flush_pending_writes(small_scenario):
    """``consistency="latest"`` reads the published snapshot lock-free; the
    default ``"snapshot"`` mode flushes first (read-your-writes)."""
    with FlexSession(small_scenario, engine="live") as session:
        backend = session.engine
        version = backend.readpath.manager.latest_version
        victim = backend.offers()[0]
        session.ingest(OfferWithdrawn(victim.creation_time, victim.id))
        stale = session.query(QuerySpec(), consistency="latest")
        assert stale.version == version
        assert victim.id in {o.id for o in stale}
        assert backend.engine.pending_events > 0  # genuinely did not flush
        fresh = session.query(QuerySpec())  # the default flushes
        assert fresh.version > version
        assert victim.id not in {o.id for o in fresh}


# ----------------------------------------------------------------------
# Cache invalidation exactness
# ----------------------------------------------------------------------
def _disjoint_cell_pair(engine):
    """Two populated grid cells whose prosumer sets do not intersect."""
    cells = [cell for cell in engine.cells() if engine.cell_members(cell)]
    for i, first in enumerate(cells):
        first_prosumers = {o.prosumer_id for o in engine.cell_members(first)}
        for second in cells[i + 1 :]:
            second_prosumers = {o.prosumer_id for o in engine.cell_members(second)}
            if first_prosumers.isdisjoint(second_prosumers):
                return first, second
    pytest.skip("scenario produced no prosumer-disjoint cell pair")


def test_untouched_cells_survive_commits_as_hits(small_scenario):
    with FlexSession(small_scenario, engine="live") as session:
        backend = session.engine
        engine = backend.engine
        cache = backend.readpath.cache
        ours, theirs = _disjoint_cell_pair(engine)
        our_prosumers = sorted({o.prosumer_id for o in engine.cell_members(ours)})
        spec = QuerySpec.build(
            prosumer_id=our_prosumers, parameters=session.parameters
        )
        first = session.query(spec)
        assert session.query(spec) is first  # same version: a plain hit
        # A commit dirtying only the *other* cell carries the entry.
        victim = engine.cell_members(theirs)[0]
        session.ingest(OfferWithdrawn(victim.creation_time, victim.id))
        session.commit()
        carried = session.query(spec)
        assert carried is first
        # The carry re-stamped the result at the new version.
        assert carried.version == backend.readpath.manager.latest_version
        assert cache.carried >= 1
        # A commit dirtying *our* cell invalidates: the next read recomputes.
        ours_victim = engine.cell_members(ours)[0]
        session.ingest(OfferWithdrawn(ours_victim.creation_time, ours_victim.id))
        session.commit()
        recomputed = session.query(spec)
        assert recomputed is not first
        assert ours_victim.id not in {
            o.id for group in recomputed.constituents.values() for o in group
        } | {o.id for o in recomputed}
        assert cache.invalidations >= 1
        stats = cache.stats()
        assert stats["hits"] >= 2 and stats["misses"] >= 2


def test_withdraw_from_fully_skipped_chunk_invalidates_entry(small_scenario):
    """A withdrawal whose cell re-aggregated *zero* chunks must still drop
    the cached entry — never carry/re-stamp it to the new version.

    Deterministic setup: five identical-cell offers under
    ``max_group_size=2`` chunk as [1,2], [3,4], [5].  Withdrawing id 5
    retires its singleton chunk alone — the surviving chunks are untouched,
    so the commit reports ``chunks_reaggregated == 0`` — yet the entry's
    matched set contained id 5, so carrying it would serve a withdrawn offer
    at the new version.  The invalidation scan builds its dirty-id set from
    the *previous* snapshot's cell members (which still held id 5), which is
    exactly what makes this sound; this test pins that behaviour.
    """
    from repro.aggregation.parameters import AggregationParameters
    from repro.live.events import OfferAdded
    from tests.conftest import make_offer

    scenario = small_scenario.replace_offers([])
    parameters = AggregationParameters(max_group_size=2)
    with FlexSession(
        scenario, engine="live", parameters=parameters, live_preload=False
    ) as session:
        offers = [
            make_offer(offer_id=i, earliest_start=40, time_flexibility=8)
            for i in range(1, 6)
        ]
        for offer in offers:
            session.ingest(OfferAdded(offer.creation_time, offer))
        session.commit()
        cache = session.engine.readpath.cache
        spec = QuerySpec()
        first = session.query(spec)  # miss + fill
        assert session.query(spec) is first  # cached
        assert 5 in {o.id for o in first.offers}
        invalidations_before = cache.invalidations
        result = session.ingest(
            OfferWithdrawn(offers[-1].assignment_deadline, 5)
        ) or session.commit()
        # The precondition that makes this the dangerous case: the withdrawal
        # retired the [5] chunk alone, nothing was re-aggregated.
        assert result.chunks_reaggregated == 0
        assert result.chunks_skipped > 0
        assert [o.id for o in result.removed] == [5]
        # The entry must have been invalidated, not carried/re-stamped.
        assert cache.invalidations == invalidations_before + 1
        recomputed = session.query(spec)
        assert recomputed is not first
        assert recomputed.version == session.engine.readpath.manager.latest_version
        assert sorted(o.id for o in recomputed.offers) == [1, 2, 3, 4]


def test_cache_entry_version_follows_carries(small_scenario):
    """A carried entry serves the *new* version — stats agree with the facade."""
    with FlexSession(small_scenario, engine="live") as session:
        backend = session.engine
        spec = QuerySpec.build(state="assigned")
        session.query(spec)
        summary = session.summary()
        assert summary["snapshot_version"] == backend.readpath.manager.latest_version
        assert summary["result_cache"]["entries"] >= 1
        assert summary["result_cache"]["version"] == summary["snapshot_version"]


# ----------------------------------------------------------------------
# Ring retention and pinning
# ----------------------------------------------------------------------
def test_ring_eviction_respects_pins_and_latest():
    manager = SnapshotManager(retain=3)
    for version in range(1, 5):
        manager.publish(SimpleNamespace(version=version))
    assert manager.versions() == (2, 3, 4)
    with pytest.raises(ReadPathError):
        manager.publish(SimpleNamespace(version=4))  # versions must increase
    with manager.pin(2) as pinned:
        assert pinned.version == 2
        assert manager.pin_count(2) == 1
        for version in (5, 6, 7):
            manager.publish(SimpleNamespace(version=version))
        # Eviction went around the pinned version: it survives, the ring
        # stays at budget by dropping the unpinned middle versions instead.
        assert manager.versions() == (2, 6, 7)
        assert manager.get(2).version == 2
    # Pin released: version 2 is ordinary again — the next publication
    # evicts it as the oldest unpinned entry.
    manager.publish(SimpleNamespace(version=8))
    assert 2 not in manager.versions()
    assert len(manager.versions()) <= 3
    assert manager.latest_version == 8
    with pytest.raises(ReadPathError):
        manager.get(2)
    with pytest.raises(ReadPathError):
        manager.pin(2).__enter__()


def test_ring_overfills_under_pins_and_reclaims_on_release():
    manager = SnapshotManager(retain=2)
    manager.publish(SimpleNamespace(version=1))
    manager.publish(SimpleNamespace(version=2))
    with manager.pin(1):
        with manager.pin(2):
            manager.publish(SimpleNamespace(version=3))
            # Everything old is pinned: the ring holds above retain.
            assert manager.versions() == (1, 2, 3)
        # Releasing one pin reclaims the excess immediately (3 is latest).
        assert manager.versions() == (1, 3)
    manager.publish(SimpleNamespace(version=4))
    assert manager.versions() == (3, 4)


def test_session_ring_is_bounded_and_old_versions_evict(small_scenario):
    with FlexSession(small_scenario, engine="live") as session:
        backend = session.engine
        first_version = backend.readpath.manager.latest_version
        offers = backend.offers()
        for victim in offers[:12]:
            session.ingest(OfferWithdrawn(victim.creation_time, victim.id))
            session.commit()
        retained = backend.readpath.manager.versions()
        assert len(retained) <= backend.readpath.manager.retain
        assert first_version not in retained
        with pytest.raises(ReadPathError):
            session.query(QuerySpec(), at_version=first_version)


# ----------------------------------------------------------------------
# Satellite 2: cumulative session totals across engine swaps
# ----------------------------------------------------------------------
def test_engine_swap_keeps_cumulative_session_totals(small_scenario):
    """``use_engine``/``replay(engine=...)`` must never silently reset the
    session's events-ingested and chunk totals (regression for the swap bug)."""
    with FlexSession(small_scenario, engine="live") as session:
        live_totals = session.summary()
        assert live_totals["events_ingested"] == session.engine.events_ingested
        assert live_totals["chunks_reaggregated"] > 0
        session.use_engine("sharded")
        swapped = session.summary()
        # Both preloaded backends contribute: the totals grew, never reset.
        assert swapped["events_ingested"] >= 2 * live_totals["events_ingested"]
        assert swapped["chunks_reaggregated"] >= live_totals["chunks_reaggregated"]
        events = _mutated_events(small_scenario, seed=9)
        session.replay(events[: len(events) // 2], engine="async", reset=True)
        replayed = session.summary()
        assert replayed["events_ingested"] >= swapped["events_ingested"]
        assert replayed["chunks_reaggregated"] >= swapped["chunks_reaggregated"]
        session.use_engine("batch")
        assert "events_ingested" not in session.summary()


# ----------------------------------------------------------------------
# Store integration: restore re-seeds the snapshot sequence
# ----------------------------------------------------------------------
def test_restore_seeds_snapshot_version_from_checkpoint(tmp_path, small_scenario):
    events = _mutated_events(small_scenario, seed=3)
    cut = len(events) // 2
    with FlexSession(small_scenario, engine="live", live_preload=False) as session:
        session.replay(events[:cut])
        manager = RecoveryManager(tmp_path / "store")
        manager.record(events)
        manager.checkpoint(session)
        checkpoint_commits = session.engine._state_engine.commit_count
    restored = RecoveryManager(tmp_path / "store").restore(scenario=small_scenario)
    try:
        backend = restored.engine
        # The baseline snapshot continued the checkpoint's commit sequence and
        # the tail replay advanced it — never a restart from zero.
        assert backend.readpath.manager.latest_version == (
            backend._state_engine.commit_count
        )
        assert backend.readpath.manager.latest_version >= checkpoint_commits
        result = restored.query(QuerySpec())
        assert result.version == backend.readpath.manager.latest_version
        assert sorted(o.id for o in result) == sorted(
            o.id for o in backend.offers()
        )
    finally:
        restored.close()

"""Tests for the map, schematic, pivot and dashboard views plus the balance chart."""

from __future__ import annotations

import pytest

from repro.errors import ViewError
from repro.flexoffer.model import FlexOfferState
from repro.olap.cube import MemberFilter
from repro.views.dashboard import BalanceView, BalanceViewOptions, DashboardOptions, DashboardView
from repro.views.map_view import MapView, MapViewOptions
from repro.views.pivot_view import PivotView, PivotViewOptions
from repro.views.schematic import SchematicView, SchematicViewOptions


class TestMapView:
    @pytest.fixture(scope="class")
    def view(self, scenario):
        return MapView(scenario.flex_offers, scenario.geography, scenario.grid)

    def test_counts_cover_all_offers(self, view, scenario):
        counts = view.state_counts()
        total = sum(sum(values.values()) for values in counts.values())
        relevant = sum(
            1
            for offer in scenario.flex_offers
            if offer.state in (FlexOfferState.ACCEPTED, FlexOfferState.ASSIGNED, FlexOfferState.REJECTED)
        )
        assert total == relevant

    def test_anchor_per_region(self, view, scenario):
        anchors = view.place_anchors()
        assert set(anchors) == {region.name for region in scenario.geography.regions}

    def test_city_level(self, scenario):
        view = MapView(
            scenario.flex_offers,
            scenario.geography,
            scenario.grid,
            options=MapViewOptions(level="city"),
        )
        anchors = view.place_anchors()
        assert "Copenhagen" in anchors

    def test_invalid_level_rejected(self, scenario):
        with pytest.raises(ViewError):
            MapView(
                scenario.flex_offers,
                scenario.geography,
                scenario.grid,
                options=MapViewOptions(level="galaxy"),
            )

    def test_svg_contains_place_labels_and_bars(self, view, scenario):
        svg = view.to_svg()
        for region in scenario.geography.regions:
            assert region.name in svg
        assert "state-bar" in svg

    def test_offers_in_place(self, view, scenario):
        region = scenario.geography.regions[0].name
        offers = view.offers_in_place(region)
        assert all(offer.region == region for offer in offers)
        assert len(offers) == sum(1 for o in scenario.flex_offers if o.region == region)

    def test_empty_offer_list_renders(self, scenario, grid):
        view = MapView([], scenario.geography, grid)
        assert "<svg" in view.to_svg()


class TestSchematicView:
    @pytest.fixture(scope="class")
    def view(self, scenario):
        return SchematicView(scenario.flex_offers, scenario.topology, scenario.grid)

    def test_positions_cover_shown_nodes(self, view):
        positions = view.node_positions()
        assert all(name.startswith(("TX ", "DS ")) for name in positions)

    def test_state_shares_roll_up_to_distribution_level(self, view, scenario):
        shares = view.state_shares()
        total = sum(sum(values.values()) for values in shares.values())
        relevant = sum(
            1
            for offer in scenario.flex_offers
            if offer.state in (FlexOfferState.ACCEPTED, FlexOfferState.ASSIGNED, FlexOfferState.REJECTED)
        )
        assert total == relevant

    def test_svg_has_wedges_and_lines(self, view):
        svg = view.to_svg()
        assert "state-wedge" in svg
        assert "grid-line" in svg

    def test_feeder_level_shows_more_nodes(self, scenario):
        distribution = SchematicView(scenario.flex_offers, scenario.topology, scenario.grid)
        feeder = SchematicView(
            scenario.flex_offers,
            scenario.topology,
            scenario.grid,
            options=SchematicViewOptions(level="feeder"),
        )
        assert len(feeder.node_positions()) > len(distribution.node_positions())

    def test_offers_under_transmission_node(self, view, scenario):
        region = scenario.geography.regions[0].name
        offers = view.offers_under_node(f"TX {region}")
        assert all(offer.region == region for offer in offers)

    def test_offers_under_unknown_node(self, view):
        assert view.offers_under_node("TX Mars") == []


class TestPivotView:
    @pytest.fixture(scope="class")
    def view(self, scenario):
        return PivotView(scenario.flex_offers, scenario.grid)

    def test_pivot_table_counts(self, view, scenario):
        table = view.pivot_table()
        assert sum(table.row_totals("flex_offer_count")) == len(scenario.flex_offers)

    def test_svg_has_swimlanes_and_mdx_window(self, view):
        svg = view.to_svg()
        assert "swimlane" in svg
        assert "MDX query window" in svg

    def test_drill_down_and_up(self, scenario):
        view = PivotView(
            scenario.flex_offers,
            scenario.grid,
            options=PivotViewOptions(row_dimension="Geography", row_level="region"),
        )
        down = view.drill_down()
        assert down.options.row_level == "city"
        up = down.drill_up()
        assert up.options.row_level == "region"

    def test_drill_down_at_leaf_is_noop(self, scenario):
        view = PivotView(
            scenario.flex_offers,
            scenario.grid,
            options=PivotViewOptions(row_dimension="Geography", row_level="district"),
        )
        assert view.drill_down() is view

    def test_run_mdx(self, view, scenario):
        table = view.run_mdx(view.default_mdx())
        assert sum(row[0] for row in table.values["value"]) == len(scenario.flex_offers)

    def test_run_mdx_empty_raises(self, view):
        with pytest.raises(ViewError):
            view.run_mdx("   ")

    def test_filters_restrict_rows(self, scenario):
        view = PivotView(
            scenario.flex_offers,
            scenario.grid,
            options=PivotViewOptions(filters=(MemberFilter("State", "state", ("assigned",)),)),
        )
        table = view.pivot_table()
        assigned = sum(1 for offer in scenario.flex_offers if offer.state is FlexOfferState.ASSIGNED)
        assert sum(table.row_totals("flex_offer_count")) == assigned

    def test_canvas_grows_with_many_rows(self, scenario):
        view = PivotView(
            scenario.flex_offers,
            scenario.grid,
            options=PivotViewOptions(row_dimension="Geography", row_level="city", lane_height=80),
        )
        assert view.scene().height >= view.options.height


class TestDashboardView:
    @pytest.fixture(scope="class")
    def view(self, scenario):
        return DashboardView(scenario.flex_offers, scenario.grid)

    def test_percentages_sum_to_100(self, view):
        assert sum(view.state_percentages().values()) == pytest.approx(100.0)

    def test_totals_match_states(self, view, scenario):
        totals = view.state_totals()
        assert totals["assigned"] == sum(
            1 for offer in scenario.flex_offers if offer.state is FlexOfferState.ASSIGNED
        )

    def test_interval_filter_reduces_offers(self, scenario):
        origin = scenario.grid.origin
        view = DashboardView(
            scenario.flex_offers,
            scenario.grid,
            options=DashboardOptions(
                interval_start=origin.replace(hour=12), interval_end=origin.replace(hour=13, minute=15)
            ),
        )
        assert 0 < len(view.offers) < len(scenario.flex_offers)

    def test_counts_over_time_totals(self, view, scenario):
        counts = view.counts_over_time()
        total = sum(value for values in counts.values() for _, value in values)
        relevant = sum(
            1
            for offer in scenario.flex_offers
            if offer.state in (FlexOfferState.ACCEPTED, FlexOfferState.ASSIGNED, FlexOfferState.REJECTED)
        )
        assert total == relevant

    def test_svg_has_pie_and_bars(self, view):
        svg = view.to_svg()
        assert "state-wedge" in svg
        assert "state-bar" in svg

    def test_empty_interval_percentages_zero(self, scenario):
        origin = scenario.grid.origin
        view = DashboardView(
            [],
            scenario.grid,
            options=DashboardOptions(interval_start=origin, interval_end=origin),
        )
        assert sum(view.state_percentages().values()) == 0.0


class TestBalanceView:
    @pytest.fixture(scope="class")
    def plan(self, scenario):
        from repro.enterprise.planning import run_planning_cycle

        return run_planning_cycle(scenario)

    def test_svg_has_all_bands(self, plan, scenario):
        view = BalanceView(scenario.res_production, scenario.base_demand, plan.planned_load, scenario.grid)
        svg = view.to_svg()
        assert "non-flexible demand" in svg
        assert "flexible demand" in svg
        assert "res-production" in svg

    def test_overlap_improves_after_planning(self, plan, scenario):
        before = BalanceView(scenario.res_production, scenario.base_demand, plan.unplanned_load, scenario.grid)
        after = BalanceView(scenario.res_production, scenario.base_demand, plan.planned_load, scenario.grid)
        assert after.overlap_energy() >= before.overlap_energy()

    def test_caption_rendered(self, plan, scenario):
        view = BalanceView(
            scenario.res_production,
            scenario.base_demand,
            plan.planned_load,
            scenario.grid,
            options=BalanceViewOptions(caption="after balancing"),
        )
        assert "after balancing" in view.to_svg()

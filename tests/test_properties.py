"""Property-based tests (hypothesis) for the core data structures and invariants."""

from __future__ import annotations

from datetime import timedelta

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from dataclasses import replace

from repro.aggregation.aggregate import aggregate_group
from repro.aggregation.disaggregate import disaggregate
from repro.flexoffer.model import FlexOffer, FlexOfferState, ProfileSlice, Schedule
from repro.live.engine import LiveAggregationEngine, assert_batch_equivalent, canonical_form
from repro.live.events import OfferAdded, OfferStateChanged, OfferUpdated, OfferWithdrawn
from repro.flexoffer.serialization import flex_offer_from_dict, flex_offer_to_dict
from repro.render.scales import LinearScale, pretty_ticks
from repro.timeseries.grid import TimeGrid
from repro.timeseries.resample import downsample, upsample
from repro.timeseries.series import TimeSeries
from repro.views.lanes import assign_lanes, lanes_are_valid

_GRID = TimeGrid()


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def profile_slices(draw):
    low = draw(st.floats(min_value=0.0, max_value=50.0, allow_nan=False, allow_infinity=False))
    band = draw(st.floats(min_value=0.0, max_value=20.0, allow_nan=False, allow_infinity=False))
    return ProfileSlice(min_energy=round(low, 4), max_energy=round(low + band, 4))


@st.composite
def flex_offers(draw, offer_id: int | None = None):
    earliest = draw(st.integers(min_value=0, max_value=200))
    flexibility = draw(st.integers(min_value=0, max_value=40))
    profile = tuple(draw(st.lists(profile_slices(), min_size=1, max_size=8)))
    start_time = _GRID.to_datetime(earliest)
    identifier = offer_id if offer_id is not None else draw(st.integers(min_value=1, max_value=10_000))
    return FlexOffer(
        id=identifier,
        prosumer_id=draw(st.integers(min_value=1, max_value=100)),
        profile=profile,
        earliest_start_slot=earliest,
        latest_start_slot=earliest + flexibility,
        creation_time=start_time - timedelta(hours=5),
        acceptance_deadline=start_time - timedelta(hours=3),
        assignment_deadline=start_time - timedelta(hours=1),
        region=draw(st.sampled_from(["Capital", "Zealand", "North Jutland"])),
        appliance_type=draw(st.sampled_from(["electric_vehicle", "heat_pump", "dishwasher"])),
    )


offer_lists = st.lists(flex_offers(), min_size=1, max_size=12).map(
    # Re-number ids so they are unique within a list.
    lambda offers: [
        FlexOffer(**{**offer.__dict__, "id": index + 1}) for index, offer in enumerate(offers)
    ]
)


series_values = st.lists(
    st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=96,
)


# ----------------------------------------------------------------------
# Flex-offer invariants
# ----------------------------------------------------------------------
class TestFlexOfferProperties:
    @given(flex_offers())
    @settings(max_examples=60, deadline=None)
    def test_energy_bounds_ordered(self, offer):
        assert offer.min_total_energy <= offer.max_total_energy + 1e-9
        assert offer.energy_flexibility >= -1e-9

    @given(flex_offers())
    @settings(max_examples=60, deadline=None)
    def test_span_covers_profile(self, offer):
        assert offer.latest_end_slot - offer.earliest_start_slot >= offer.profile_duration_slots

    @given(flex_offers())
    @settings(max_examples=60, deadline=None)
    def test_serialization_roundtrip(self, offer):
        assert flex_offer_from_dict(flex_offer_to_dict(offer)) == offer

    @given(flex_offers())
    @settings(max_examples=60, deadline=None)
    def test_default_schedule_is_always_feasible(self, offer):
        assigned = offer.with_default_schedule()
        assert assigned.schedule is not None
        assert assigned.scheduled_energy <= offer.max_total_energy + 1e-9

    @given(flex_offers(), st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_any_fraction_schedule_is_feasible(self, offer, fraction):
        amounts = tuple(
            piece.min_energy + fraction * (piece.max_energy - piece.min_energy) for piece in offer.profile
        )
        assigned = offer.assign(Schedule(start_slot=offer.latest_start_slot, energy_per_slice=amounts))
        assert assigned.scheduled_series(_GRID).total() >= 0.0


# ----------------------------------------------------------------------
# Aggregation / disaggregation invariants
# ----------------------------------------------------------------------
class TestAggregationProperties:
    @given(offer_lists)
    @settings(max_examples=40, deadline=None)
    def test_aggregate_preserves_energy_bounds(self, offers):
        combined = aggregate_group(offers, 1_000_000)
        np.testing.assert_allclose(
            combined.min_total_energy, sum(o.min_total_energy for o in offers), rtol=1e-7, atol=1e-9
        )
        np.testing.assert_allclose(
            combined.max_total_energy, sum(o.max_total_energy for o in offers), rtol=1e-7, atol=1e-9
        )

    @given(offer_lists)
    @settings(max_examples=40, deadline=None)
    def test_aggregate_flexibility_is_group_minimum(self, offers):
        combined = aggregate_group(offers, 1_000_000)
        assert combined.time_flexibility_slots == min(o.time_flexibility_slots for o in offers)

    @given(offer_lists, st.floats(min_value=0.0, max_value=1.0), st.integers(min_value=0, max_value=100))
    @settings(max_examples=40, deadline=None)
    def test_disaggregation_always_feasible(self, offers, fraction, shift_seed):
        combined = aggregate_group(offers, 1_000_000)
        if not combined.is_aggregate:
            return
        shift = shift_seed % (combined.time_flexibility_slots + 1)
        amounts = tuple(
            piece.min_energy + fraction * (piece.max_energy - piece.min_energy) for piece in combined.profile
        )
        schedule = Schedule(start_slot=combined.earliest_start_slot + shift, energy_per_slice=amounts)
        assigned = disaggregate(combined, offers, schedule)
        assert len(assigned) == len(offers)
        for original, result in zip(offers, assigned):
            assert original.earliest_start_slot <= result.schedule.start_slot <= original.latest_start_slot
            for piece, amount in zip(result.profile, result.schedule.energy_per_slice):
                assert piece.min_energy - 1e-6 <= amount <= piece.max_energy + 1e-6


# ----------------------------------------------------------------------
# Live engine equivalence: event replay == batch re-aggregation
# ----------------------------------------------------------------------
@st.composite
def offer_event_streams(draw):
    """A valid random event stream: adds first, then updates/withdrawals/transitions."""
    offers = draw(offer_lists)
    timestamp = _GRID.to_datetime(0)
    events = []
    alive: dict[int, FlexOffer] = {}
    for offer in offers:
        pristine = replace(offer, state=FlexOfferState.OFFERED, schedule=None)
        events.append(OfferAdded(timestamp, pristine))
        alive[pristine.id] = pristine
    operations = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["update", "withdraw", "accept", "reject", "assign"]),
                st.integers(min_value=0, max_value=1_000_000),
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            ),
            max_size=15,
        )
    )
    for kind, pick, fraction in operations:
        if not alive:
            break
        offer_id = sorted(alive)[pick % len(alive)]
        offer = alive[offer_id]
        if kind == "update":
            revised = replace(
                offer,
                profile=tuple(piece.scale(0.5 + fraction) for piece in offer.profile),
                latest_start_slot=offer.latest_start_slot + pick % 3,
                schedule=None,
                state=FlexOfferState.OFFERED,
            )
            events.append(OfferUpdated(timestamp, revised))
            alive[offer_id] = revised
        elif kind == "withdraw":
            events.append(OfferWithdrawn(timestamp, offer_id))
            del alive[offer_id]
        elif kind == "accept":
            events.append(OfferStateChanged(timestamp, offer_id, FlexOfferState.ACCEPTED))
            alive[offer_id] = offer.accept()
        elif kind == "reject":
            events.append(OfferStateChanged(timestamp, offer_id, FlexOfferState.REJECTED))
            alive[offer_id] = offer.reject()
        else:
            schedule = Schedule(
                start_slot=offer.earliest_start_slot + pick % (offer.time_flexibility_slots + 1),
                energy_per_slice=tuple(
                    piece.min_energy + fraction * (piece.max_energy - piece.min_energy)
                    for piece in offer.profile
                ),
            )
            events.append(OfferStateChanged(timestamp, offer_id, FlexOfferState.ASSIGNED, schedule))
            alive[offer_id] = offer.assign(schedule)
    return events, alive


class TestLiveEquivalenceProperties:
    @given(offer_event_streams(), st.sampled_from([0, 1, 3, 7]))
    @settings(max_examples=40, deadline=None)
    def test_live_replay_equals_batch_aggregation(self, stream, micro_batch_size):
        """After any event stream, the incremental engine's committed state equals
        batch re-aggregation of the surviving offers — bit-for-bit on profiles,
        ids modulo ordering (the ``canonical_form`` contract)."""
        events, alive = stream
        engine = LiveAggregationEngine(micro_batch_size=micro_batch_size)
        engine.apply_many(events)
        engine.commit()
        assert {offer.id for offer in engine.offers()} == set(alive)
        assert engine.offers() == [alive[i] for i in sorted(alive)]
        assert_batch_equivalent(engine)

    @given(offer_event_streams())
    @settings(max_examples=20, deadline=None)
    def test_commit_granularity_does_not_change_final_state(self, stream):
        """Committing after every event and committing once agree exactly."""
        events, _ = stream
        eager = LiveAggregationEngine(micro_batch_size=1)
        eager.apply_many(events)
        eager.commit()
        lazy = LiveAggregationEngine()
        lazy.apply_many(events)
        lazy.commit()
        eager_state = sorted(map(repr, map(canonical_form, eager.aggregated_offers())))
        lazy_state = sorted(map(repr, map(canonical_form, lazy.aggregated_offers())))
        assert eager_state == lazy_state


# ----------------------------------------------------------------------
# Lane packing invariant
# ----------------------------------------------------------------------
class TestLaneProperties:
    @given(offer_lists)
    @settings(max_examples=40, deadline=None)
    def test_first_fit_lanes_never_overlap(self, offers):
        assignment = assign_lanes(offers)
        assert lanes_are_valid(offers, assignment)

    @given(offer_lists)
    @settings(max_examples=40, deadline=None)
    def test_lane_count_bounded_by_offer_count(self, offers):
        assignment = assign_lanes(offers)
        assert max(assignment.values()) + 1 <= len(offers)


# ----------------------------------------------------------------------
# Time-series and scale invariants
# ----------------------------------------------------------------------
class TestSeriesProperties:
    @given(series_values, series_values)
    @settings(max_examples=60, deadline=None)
    def test_addition_is_commutative(self, left, right):
        a = TimeSeries(_GRID, 0, left)
        b = TimeSeries(_GRID, 3, right)
        np.testing.assert_allclose((a + b).values, (b + a).values)

    @given(series_values)
    @settings(max_examples=60, deadline=None)
    def test_downsample_preserves_total(self, values):
        series = TimeSeries(_GRID, 0, values)
        coarse = downsample(series, TimeGrid(resolution=timedelta(hours=1)))
        np.testing.assert_allclose(coarse.total(), series.total(), rtol=1e-9, atol=1e-9)

    @given(series_values)
    @settings(max_examples=60, deadline=None)
    def test_upsample_then_downsample_is_identity(self, values):
        hour = TimeGrid(resolution=timedelta(hours=1))
        series = TimeSeries(hour, 0, values)
        roundtrip = downsample(upsample(series, _GRID), hour)
        np.testing.assert_allclose(roundtrip.values, series.values, atol=1e-9)

    @given(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        st.floats(min_value=0.001, max_value=1e6, allow_nan=False),
    )
    @settings(max_examples=80, deadline=None)
    def test_pretty_ticks_have_constant_step(self, low, width):
        ticks = pretty_ticks(low, low + width)
        assert len(ticks) >= 2
        steps = np.diff(ticks)
        np.testing.assert_allclose(steps, steps[0], rtol=1e-6)

    @given(
        st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
        st.floats(min_value=0.01, max_value=1e4, allow_nan=False),
        st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
    )
    @settings(max_examples=80, deadline=None)
    def test_linear_scale_invert_roundtrip(self, low, width, value_fraction):
        scale = LinearScale(low, low + width, 0.0, 640.0)
        value = low + (value_fraction % 1.0) * width
        assert abs(scale.invert(scale.project(value)) - value) < 1e-6 * max(1.0, abs(value))

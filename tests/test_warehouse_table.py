"""Tests for the columnar Table primitive."""

from __future__ import annotations

import pytest

from repro.errors import UnknownColumnError, WarehouseError
from repro.warehouse.table import ColumnArray, Table, force_backend, numpy_enabled


@pytest.fixture
def people() -> Table:
    table = Table("people", ["name", "city", "age"])
    table.extend(
        [
            {"name": "ana", "city": "Aalborg", "age": 30},
            {"name": "bo", "city": "Aarhus", "age": 25},
            {"name": "cia", "city": "Aalborg", "age": 40},
            {"name": "dan", "city": "Odense", "age": 35},
        ]
    )
    return table


class TestBasics:
    def test_length(self, people):
        assert len(people) == 4

    def test_duplicate_columns_rejected(self):
        with pytest.raises(WarehouseError):
            Table("bad", ["a", "a"])

    def test_append_missing_column_rejected(self, people):
        with pytest.raises(UnknownColumnError):
            people.append({"name": "eve"})

    def test_column_access(self, people):
        assert people.column("city")[0] == "Aalborg"

    def test_unknown_column_raises(self, people):
        with pytest.raises(UnknownColumnError):
            people.column("height")

    def test_row_access(self, people):
        assert people.row(1)["name"] == "bo"

    def test_row_out_of_range(self, people):
        with pytest.raises(WarehouseError):
            people.row(10)

    def test_rows_iteration(self, people):
        assert [row["name"] for row in people.rows()] == ["ana", "bo", "cia", "dan"]

    def test_empty_table_length(self):
        assert len(Table("empty", ["a"])) == 0


class TestFiltering:
    def test_where_equality(self, people):
        assert len(people.where(city="Aalborg")) == 2

    def test_where_unknown_column(self, people):
        with pytest.raises(UnknownColumnError):
            people.where(country="DK")

    def test_where_in(self, people):
        assert len(people.where_in("city", ["Aalborg", "Odense"])) == 3

    def test_where_between(self, people):
        assert len(people.where_between("age", 30, 40)) == 3

    def test_filter_predicate(self, people):
        assert len(people.filter(lambda row: row["age"] > 30)) == 2

    def test_filter_returns_new_table(self, people):
        filtered = people.where(city="Aalborg")
        assert len(people) == 4
        assert filtered is not people


class TestProjectionAndSort:
    def test_select(self, people):
        projected = people.select(["name"])
        assert projected.columns == ("name",)
        assert len(projected) == 4

    def test_select_unknown_column(self, people):
        with pytest.raises(UnknownColumnError):
            people.select(["height"])

    def test_sort_by(self, people):
        assert people.sort_by("age").column("age") == [25, 30, 35, 40]

    def test_sort_by_descending(self, people):
        assert people.sort_by("age", reverse=True).column("age")[0] == 40


class TestGroupByAndJoin:
    def test_group_by_count(self, people):
        grouped = people.group_by(["city"], {"count": len})
        counts = dict(zip(grouped.column("city"), grouped.column("count")))
        assert counts == {"Aalborg": 2, "Aarhus": 1, "Odense": 1}

    def test_group_by_custom_aggregation(self, people):
        grouped = people.group_by(["city"], {"max_age": lambda rows: max(r["age"] for r in rows)})
        ages = dict(zip(grouped.column("city"), grouped.column("max_age")))
        assert ages["Aalborg"] == 40

    def test_group_by_unknown_key(self, people):
        with pytest.raises(UnknownColumnError):
            people.group_by(["country"], {"count": len})

    def test_join(self, people):
        cities = Table("cities", ["city", "region"])
        cities.extend(
            [
                {"city": "Aalborg", "region": "North"},
                {"city": "Aarhus", "region": "Mid"},
            ]
        )
        joined = people.join(cities, on="city")
        assert "region" in joined.columns
        by_name = {row["name"]: row["region"] for row in joined.rows()}
        assert by_name["ana"] == "North"
        assert by_name["dan"] is None  # unmatched rows keep None

    def test_join_with_prefix(self, people):
        cities = Table("cities", ["city", "region"])
        cities.append({"city": "Aalborg", "region": "North"})
        joined = people.join(cities, on="city", prefix="geo_")
        assert "geo_region" in joined.columns


class TestIndexesAndMutation:
    def test_lookup_without_index_scans(self, people):
        assert people.lookup("city", "Aalborg") == [0, 2]

    def test_lookup_with_index_matches_scan(self, people):
        scan = people.lookup("city", "Aalborg")
        people.create_index("city")
        assert people.lookup("city", "Aalborg") == scan
        assert people.lookup("city", "Nowhere") == []

    def test_create_index_unknown_column(self, people):
        with pytest.raises(UnknownColumnError):
            people.create_index("height")

    def test_index_maintained_on_append(self, people):
        people.create_index("city")
        people.lookup("city", "Aalborg")  # force the lazy build
        people.append({"name": "eve", "city": "Aalborg", "age": 22})
        assert people.lookup("city", "Aalborg") == [0, 2, 4]

    def test_where_uses_index_and_agrees_with_scan(self, people):
        expected = [row["name"] for row in people.where(city="Aalborg", age=40).rows()]
        people.create_index("city")
        actual = [row["name"] for row in people.where(city="Aalborg", age=40).rows()]
        assert actual == expected == ["cia"]

    def test_delete_where(self, people):
        assert people.delete_where("city", "Aalborg") == 2
        assert len(people) == 2
        assert list(people.values("name")) == ["bo", "dan"]
        assert people.delete_where("city", "Aalborg") == 0

    def test_delete_tombstones_keep_positions_stable(self, people):
        people.create_index("city")
        people.lookup("city", "Odense")
        people.delete_where("name", "ana")
        # The delete is a tombstone: physical positions do not shift until a
        # compaction, so index hits stay valid without a rebuild.
        assert people.lookup("city", "Odense") == [3]
        assert people.tombstone_count == 1
        assert [row["name"] for row in people.rows()] == ["bo", "cia", "dan"]
        # Compaction physically removes the dead row; positions shift now.
        assert people.compact() == 1
        assert people.tombstone_count == 0
        assert people.lookup("city", "Odense") == [2]

    def test_deleted_rows_skipped_everywhere(self, people):
        people.create_index("city")
        people.delete_where("city", "Aalborg")
        assert len(people.where(city="Aalborg")) == 0
        assert [row["name"] for row in people.sort_by("age").rows()] == ["bo", "dan"]
        assert list(people.select(["name"]).values("name")) == ["bo", "dan"]
        assert "ana" not in people.to_csv()
        with pytest.raises(WarehouseError):
            people.row(0)  # tombstoned physical position

    def test_auto_compaction_amortizes_deletes(self):
        table = Table("facts", ["offer_id", "value"])
        table.create_index("offer_id")
        table.extend({"offer_id": i, "value": i * 2} for i in range(200))
        threshold = max(Table.COMPACT_MIN_TOMBSTONES, 200 * Table.COMPACT_FRACTION)
        for offer_id in range(150):
            table.delete_where("offer_id", offer_id)
            assert table.tombstone_count < threshold + 1
        assert len(table) == 50
        assert list(table.values("offer_id")) == list(range(150, 200))

    def test_set_value_updates_cell_and_index(self, people):
        people.create_index("city")
        people.lookup("city", "Aalborg")  # force the lazy build
        people.set_value("city", 0, "Esbjerg")
        assert people.lookup("city", "Aalborg") == [2]
        assert people.lookup("city", "Esbjerg") == [0]

    def test_set_value_validates(self, people):
        with pytest.raises(UnknownColumnError):
            people.set_value("height", 0, 1)
        with pytest.raises(WarehouseError):
            people.set_value("city", 99, "x")

    def test_indexed_columns_listing(self, people):
        assert people.indexed_columns == ()
        people.create_index("city")
        assert people.indexed_columns == ("city",)


class TestCsv:
    def test_roundtrip(self, people):
        rebuilt = Table.from_csv("people", people.to_csv())
        assert len(rebuilt) == 4
        assert rebuilt.column("name") == people.column("name")

    def test_from_empty_csv_raises(self):
        with pytest.raises(WarehouseError):
            Table.from_csv("x", "")


def _typed_table() -> Table:
    table = Table(
        "facts",
        ["offer_id", "energy", "flag", "label"],
        dtypes={"offer_id": "int64", "energy": "float64", "flag": "bool"},
    )
    table.extend(
        {"offer_id": i, "energy": i * 0.5, "flag": i % 2 == 0, "label": f"o{i}"}
        for i in range(20)
    )
    return table


class TestTypedColumns:
    """The numpy-backed typed columns and their pure-Python fallback."""

    def test_unknown_dtype_rejected(self):
        with pytest.raises(WarehouseError):
            Table("bad", ["a"], dtypes={"a": "complex128"})

    def test_typed_reads_are_plain_python(self):
        table = _typed_table()
        for value in table.column("offer_id")[:3]:
            assert type(value) is int
        assert type(table.column("energy")[1]) is float
        assert type(table.column("flag")[0]) is bool
        assert table.row(2) == {"offer_id": 2, "energy": 1.0, "flag": True, "label": "o2"}

    def test_typed_columns_use_arrays_when_numpy_present(self):
        table = _typed_table()
        if numpy_enabled():
            assert isinstance(table.column("offer_id"), ColumnArray)
            assert table.column_array("offer_id") is not None
        assert table.column_array("label") is None

    def test_scalar_backend_is_bit_identical(self):
        with force_backend("scalar"):
            fallback = _typed_table()
            assert not numpy_enabled()
            assert isinstance(fallback.column("offer_id"), list)
            scalar_rows = list(fallback.rows())
            scalar_filtered = [
                row["offer_id"] for row in fallback.where(flag=True).rows()
            ]
        table = _typed_table()
        assert list(table.rows()) == scalar_rows
        assert [row["offer_id"] for row in table.where(flag=True).rows()] == scalar_filtered

    def test_force_backend_rejects_bad_mode(self):
        with pytest.raises(WarehouseError):
            with force_backend("gpu"):
                pass

    def test_non_conforming_cell_demotes_column(self):
        table = _typed_table()
        table.append({"offer_id": None, "energy": 0.0, "flag": False, "label": "x"})
        assert isinstance(table.column("offer_id"), list)
        assert table.column("offer_id")[-1] is None
        # The other typed columns keep their backing.
        if numpy_enabled():
            assert isinstance(table.column("energy"), ColumnArray)

    def test_set_value_demotes_on_type_change(self):
        table = _typed_table()
        table.set_value("energy", 3, "not-a-number")
        assert isinstance(table.column("energy"), list)
        assert table.column("energy")[3] == "not-a-number"

    def test_vectorized_ops_match_scan(self):
        table = _typed_table()
        assert [r["offer_id"] for r in table.where(offer_id=7).rows()] == [7]
        assert len(table.where_in("offer_id", [1, 5, 99])) == 2
        assert len(table.where_between("energy", 1.0, 3.0)) == 5
        assert table.lookup("offer_id", 13) == [13]
        assert table.sort_by("energy").column("energy")[0] == 0.0

    def test_cross_type_equality_keeps_python_semantics(self):
        # Python's ``1 == 1.0`` and ``0 == False`` must keep holding even for
        # array-backed columns: mismatched query types take the scan path.
        table = _typed_table()
        assert len(table.where(offer_id=7.0)) == 1
        assert len(table.where(flag=0)) == 10

    def test_compact_preserves_typed_backing(self):
        table = _typed_table()
        table.create_index("offer_id")
        for offer_id in range(10):
            table.delete_where("offer_id", offer_id)
        table.compact()
        assert list(table.values("offer_id")) == list(range(10, 20))
        if numpy_enabled():
            assert isinstance(table.column("offer_id"), ColumnArray)

    def test_subset_preserves_dtypes(self):
        table = _typed_table()
        filtered = table.where_between("offer_id", 5, 15)
        if numpy_enabled():
            assert isinstance(filtered.column("energy"), ColumnArray)
        assert [type(v) for v in filtered.column("offer_id")[:2]] == [int, int]

    def test_install_columns_adopts_conforming_lists(self):
        table = Table("t", ["a", "b"], dtypes={"a": "int64"})
        table.install_columns({"a": [1, 2, 3], "b": ["x", "y", "z"]})
        assert list(table.values("a")) == [1, 2, 3]
        if numpy_enabled():
            assert isinstance(table.column("a"), ColumnArray)
        table_with_none = Table("t", ["a"], dtypes={"a": "int64"})
        table_with_none.install_columns({"a": [1, None, 3]})
        assert isinstance(table_with_none.column("a"), list)

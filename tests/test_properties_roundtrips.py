"""Property-based round-trip tests across module boundaries.

These properties tie several substrates together: arbitrary (valid) flex-offers
must survive the warehouse fact-table round trip, the JSON and CSV exchange
formats, and the OLAP cube must preserve totals regardless of which dimension
level the offers are grouped on.
"""

from __future__ import annotations

from datetime import timedelta

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flexoffer.model import FlexOffer, ProfileSlice
from repro.flexoffer.serialization import from_csv, from_json, to_csv, to_json
from repro.olap.cube import FlexOfferCube, GroupBy
from repro.olap.mdx import parse
from repro.timeseries.grid import TimeGrid
from repro.warehouse.loader import load_flex_offer
from repro.warehouse.query import FlexOfferRepository
from repro.warehouse.schema import StarSchema

_GRID = TimeGrid()


@st.composite
def stateful_offers(draw, offer_id: int):
    """A valid flex-offer in a random lifecycle state (with schedule when needed)."""
    earliest = draw(st.integers(min_value=0, max_value=90))
    flexibility = draw(st.integers(min_value=0, max_value=20))
    slice_count = draw(st.integers(min_value=1, max_value=5))
    profile = []
    for _ in range(slice_count):
        low = round(draw(st.floats(min_value=0.0, max_value=10.0, allow_nan=False)), 3)
        band = round(draw(st.floats(min_value=0.0, max_value=5.0, allow_nan=False)), 3)
        profile.append(ProfileSlice(min_energy=low, max_energy=low + band))
    start_time = _GRID.to_datetime(earliest)
    offer = FlexOffer(
        id=offer_id,
        prosumer_id=draw(st.integers(min_value=1, max_value=50)),
        profile=tuple(profile),
        earliest_start_slot=earliest,
        latest_start_slot=earliest + flexibility,
        creation_time=start_time - timedelta(hours=6),
        acceptance_deadline=start_time - timedelta(hours=3),
        assignment_deadline=start_time - timedelta(hours=1),
        region=draw(st.sampled_from(["Capital", "Zealand"])),
        city=draw(st.sampled_from(["Copenhagen", "Roskilde"])),
        district="Copenhagen Centrum",
        energy_type=draw(st.sampled_from(["grid", "hydro"])),
        prosumer_type=draw(st.sampled_from(["household", "commercial"])),
        appliance_type=draw(st.sampled_from(["electric_vehicle", "heat_pump"])),
        price_per_kwh=round(draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False)), 4),
    )
    action = draw(st.sampled_from(["offered", "accepted", "assigned", "rejected"]))
    if action == "accepted":
        return offer.accept()
    if action == "rejected":
        return offer.reject()
    if action == "assigned":
        return offer.with_default_schedule()
    return offer


offer_batches = st.integers(min_value=1, max_value=8).flatmap(
    lambda count: st.tuples(*[stateful_offers(offer_id=i + 1) for i in range(count)]).map(list)
)


class TestExchangeRoundTrips:
    @given(offer_batches)
    @settings(max_examples=30, deadline=None)
    def test_json_roundtrip(self, offers):
        assert from_json(to_json(offers)) == offers

    @given(offer_batches)
    @settings(max_examples=30, deadline=None)
    def test_csv_roundtrip(self, offers):
        assert from_csv(to_csv(offers)) == offers

    @given(offer_batches)
    @settings(max_examples=25, deadline=None)
    def test_warehouse_roundtrip(self, offers):
        schema = StarSchema.empty()
        for offer in offers:
            load_flex_offer(schema, offer, geo_ids={})
        repository = FlexOfferRepository(schema, _GRID)
        loaded = repository.load().offers
        assert loaded == offers


class TestCubeInvariants:
    @given(offer_batches, st.sampled_from(["region", "city", "all"]))
    @settings(max_examples=30, deadline=None)
    def test_count_total_is_level_independent(self, offers, level):
        cube = FlexOfferCube(offers, _GRID)
        cell_set = cube.aggregate([GroupBy("Geography", level)], ["flex_offer_count"])
        assert cell_set.totals()["flex_offer_count"] == len(offers)

    @given(offer_batches)
    @settings(max_examples=30, deadline=None)
    def test_scheduled_energy_total_matches_offers(self, offers):
        cube = FlexOfferCube(offers, _GRID)
        cell_set = cube.aggregate([GroupBy("State", "state")], ["scheduled_energy"])
        expected = sum(offer.scheduled_energy for offer in offers)
        assert abs(cell_set.totals()["scheduled_energy"] - expected) < 1e-6

    @given(offer_batches)
    @settings(max_examples=30, deadline=None)
    def test_two_axis_grouping_preserves_count(self, offers):
        cube = FlexOfferCube(offers, _GRID)
        cell_set = cube.aggregate(
            [GroupBy("Prosumer", "prosumer_type"), GroupBy("Appliance", "appliance_type")],
            ["flex_offer_count"],
        )
        assert cell_set.totals()["flex_offer_count"] == len(offers)


class TestMdxParseProperties:
    measure_names = st.sampled_from(["flex_offer_count", "scheduled_energy", "avg_price"])
    dimension_levels = st.sampled_from(
        [("Geography", "region"), ("Prosumer", "prosumer_type"), ("State", "state")]
    )

    @given(st.lists(measure_names, min_size=1, max_size=3, unique=True), dimension_levels)
    @settings(max_examples=40, deadline=None)
    def test_generated_queries_parse(self, measures, dimension_level):
        dimension, level = dimension_level
        columns = ", ".join(f"[Measures].[{measure}]" for measure in measures)
        query_text = (
            f"SELECT {{{columns}}} ON COLUMNS, "
            f"{{[{dimension}].[{level}].Members}} ON ROWS FROM [FlexOffers]"
        )
        query = parse(query_text)
        assert query.measures == tuple(measures)
        assert query.rows_dimension == dimension
        assert query.rows_level == level

"""Tests for flex-offer serialization (dict / JSON / CSV round trips)."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.flexoffer.model import Direction, FlexOfferState
from repro.flexoffer.serialization import (
    flex_offer_from_dict,
    flex_offer_to_dict,
    from_csv,
    from_json,
    to_csv,
    to_json,
)
from tests.conftest import make_offer


class TestDictRoundTrip:
    def test_roundtrip_plain_offer(self, sample_offer):
        rebuilt = flex_offer_from_dict(flex_offer_to_dict(sample_offer))
        assert rebuilt == sample_offer

    def test_roundtrip_scheduled_offer(self, scheduled_offer):
        rebuilt = flex_offer_from_dict(flex_offer_to_dict(scheduled_offer))
        assert rebuilt == scheduled_offer
        assert rebuilt.schedule == scheduled_offer.schedule

    def test_roundtrip_production_offer(self):
        offer = make_offer(direction=Direction.PRODUCTION)
        rebuilt = flex_offer_from_dict(flex_offer_to_dict(offer))
        assert rebuilt.direction is Direction.PRODUCTION

    def test_roundtrip_aggregate_provenance(self):
        from dataclasses import replace

        offer = replace(make_offer(), is_aggregate=True, constituent_ids=(5, 6, 7))
        rebuilt = flex_offer_from_dict(flex_offer_to_dict(offer))
        assert rebuilt.is_aggregate
        assert rebuilt.constituent_ids == (5, 6, 7)

    def test_roundtrip_preserves_state(self):
        offer = make_offer().accept()
        rebuilt = flex_offer_from_dict(flex_offer_to_dict(offer))
        assert rebuilt.state is FlexOfferState.ACCEPTED

    def test_malformed_payload_raises(self):
        with pytest.raises(ValidationError):
            flex_offer_from_dict({"id": 1})

    def test_payload_is_json_serializable(self, scheduled_offer):
        import json

        assert json.loads(json.dumps(flex_offer_to_dict(scheduled_offer)))["id"] == scheduled_offer.id


class TestJsonRoundTrip:
    def test_roundtrip_many(self, offer_batch):
        rebuilt = from_json(to_json(offer_batch))
        assert rebuilt == offer_batch

    def test_invalid_json_raises(self):
        with pytest.raises(ValidationError):
            from_json("not json {")

    def test_non_list_json_raises(self):
        with pytest.raises(ValidationError):
            from_json('{"id": 1}')

    def test_empty_list(self):
        assert from_json(to_json([])) == []


class TestCsvRoundTrip:
    def test_roundtrip_many(self, offer_batch):
        rebuilt = from_csv(to_csv(offer_batch))
        assert rebuilt == offer_batch

    def test_header_contains_key_columns(self, offer_batch):
        header = to_csv(offer_batch).splitlines()[0]
        for column in ("id", "prosumer_id", "profile", "schedule", "state"):
            assert column in header

    def test_row_count_matches(self, offer_batch):
        text = to_csv(offer_batch)
        assert len(text.strip().splitlines()) == len(offer_batch) + 1

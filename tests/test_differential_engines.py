"""Black-box differential stress harness over all four engines.

In the spirit of black-box checkers that validate engine behaviour purely
through observable results, this harness never reaches into an engine's
private state: it keeps its own mirror of the live population, feeds
randomized event interleavings — inserts, in-place mutations, cell
migrations, withdrawals, mid-stream flush/commit points, varied
``max_group_size`` — to every incremental engine (live, sharded, async) side
by side, and checks observables only:

* **bit-identical aggregate profiles** — at every commit point each engine's
  output must equal the *batch oracle*
  (:func:`repro.aggregation.aggregate.aggregate` over the surviving offers)
  on the id-insensitive :func:`~repro.live.engine.canonical_form` multiset:
  exact float equality, no tolerance;
* **stable ids** — an aggregate whose grid cell saw no event between two
  commit points must reappear *identically* (same id, same profile, same
  constituents): neither the chunk-granular dirty ledger nor the sharded
  fan-out may disturb untouched output;
* **cross-kernel bit-identity** — the oracle is pinned to one
  :mod:`repro.aggregation.kernel` path while the engines run the other, so
  any drift between the scalar and numpy kernels fails on realistic
  workloads, not just on synthetic profiles.

Registered in the weekly ``HYPOTHESIS_PROFILE=extended`` CI run.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import replace
from datetime import timedelta

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregation.aggregate import aggregate
from repro.aggregation.grouping import group_key
from repro.aggregation.kernel import force_kernel, numpy_available
from repro.aggregation.parameters import AggregationParameters
from repro.live.asynccommit import AsyncCommitEngine
from repro.live.engine import LiveAggregationEngine, canonical_form
from repro.live.events import OfferAdded, OfferUpdated, OfferWithdrawn
from repro.live.sharded import ShardedAggregationEngine
from tests.conftest import make_offer

#: Interleaved op codes the random scripts are built from.
INSERT, MUTATE, MIGRATE, WITHDRAW, COMMIT, FLUSH = range(6)

#: One scripted op: (op code, selector int, magnitude int).  Weighted toward
#: mutations and commits — that is where chunk reuse and id stability break.
_ops = st.lists(
    st.tuples(
        st.sampled_from(
            (INSERT, INSERT, MUTATE, MUTATE, MUTATE, MIGRATE, WITHDRAW, COMMIT, COMMIT, FLUSH)
        ),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=400),
    ),
    min_size=4,
    max_size=60,
)


def _fresh_engines(parameters: AggregationParameters):
    """The three incremental engines under test, keyed by name."""
    return {
        "live": LiveAggregationEngine(parameters),
        "sharded": ShardedAggregationEngine(parameters, shard_count=3, parallel=False),
        "async": AsyncCommitEngine(
            ShardedAggregationEngine(parameters, shard_count=2), drain_batch=5
        ),
    }


def _canonical(offers) -> Counter:
    return Counter(canonical_form(offer) for offer in offers)


def run_differential(ops, max_group_size, engine_kernel, oracle_kernel) -> None:
    """Drive one random script through all engines; check at every commit."""
    parameters = AggregationParameters(max_group_size=max_group_size)
    engines = _fresh_engines(parameters)
    #: The harness's own population mirror (black-box ground truth).
    population: dict[int, object] = {}
    order: list[int] = []
    #: Grid cells any event touched since the last commit point.
    affected_cells: set = set()
    #: Aggregates each engine reported at its previous commit point.
    previous_aggregates: dict[str, list] = {name: [] for name in engines}
    next_id = 1
    try:
        with force_kernel(engine_kernel):
            for op, selector, magnitude in ops:
                if op == FLUSH:
                    engines["async"].flush()
                    continue
                if op == COMMIT:
                    for name, engine in engines.items():
                        engine.commit()
                        output = engine.aggregated_offers()
                        current = {offer for offer in output if offer.is_aggregate}
                        for prior in previous_aggregates[name]:
                            member = population.get(prior.constituent_ids[0])
                            if member is None:
                                continue  # a constituent was withdrawn: touched
                            if group_key(member, parameters) in affected_cells:
                                continue
                            assert prior in current, (
                                f"{name}: untouched aggregate {prior.id} "
                                f"(constituents {sorted(prior.constituent_ids)}) was disturbed"
                            )
                        previous_aggregates[name] = [
                            offer for offer in output if offer.is_aggregate
                        ]
                    affected_cells.clear()
                    continue
                if op == INSERT or not order:
                    offer = make_offer(
                        offer_id=next_id,
                        earliest_start=36 + selector % 12,
                        time_flexibility=4 + selector % 6,
                        prosumer_id=selector % 5 + 1,
                    )
                    next_id += 1
                    population[offer.id] = offer
                    order.append(offer.id)
                    affected_cells.add(group_key(offer, parameters))
                    event = OfferAdded(offer.creation_time, offer)
                elif op in (MUTATE, MIGRATE):
                    target = order[selector % len(order)]
                    current = population[target]
                    revised = replace(
                        current, price_per_kwh=current.price_per_kwh + magnitude / 100.0
                    )
                    if op == MIGRATE:
                        # Shift the start enough to change the grid cell (and,
                        # for the sharded engine, possibly the owning shard).
                        revised = replace(
                            revised,
                            earliest_start_slot=current.earliest_start_slot + magnitude,
                            latest_start_slot=current.latest_start_slot + magnitude,
                        )
                    population[target] = revised
                    affected_cells.add(group_key(current, parameters))
                    affected_cells.add(group_key(revised, parameters))
                    event = OfferUpdated(current.creation_time, revised)
                else:  # WITHDRAW
                    target = order.pop(selector % len(order))
                    offer = population.pop(target)
                    affected_cells.add(group_key(offer, parameters))
                    event = OfferWithdrawn(
                        offer.assignment_deadline + timedelta(minutes=15), target
                    )
                for engine in engines.values():
                    engine.apply(event)
            # Final barrier: every engine commits and must agree with the
            # batch oracle bit for bit, on an identical surviving population.
            states = {}
            surviving = None
            for name, engine in engines.items():
                engine.commit()
                states[name] = _canonical(engine.aggregated_offers())
                offers = engine.offers()
                assert [o.id for o in offers] == sorted(population), (
                    f"{name}: surviving population diverged from the mirror"
                )
                surviving = offers
        with force_kernel(oracle_kernel):
            oracle = _canonical(aggregate(surviving, parameters, id_offset=1_000_000).offers)
        for name, state in states.items():
            assert state == oracle, f"{name} diverged from the batch oracle"
    finally:
        for engine in engines.values():
            close = getattr(engine, "close", None)
            if close is not None:
                close()


@pytest.mark.parametrize("max_group_size", (0, 1, 3, 5))
@given(ops=_ops)
@settings(deadline=None)
def test_random_interleavings_stay_equivalent(max_group_size, ops):
    """Random scripts: engines ≡ batch oracle, untouched output undisturbed."""
    run_differential(ops, max_group_size, engine_kernel=None, oracle_kernel="scalar")


@pytest.mark.skipif(not numpy_available(), reason="numpy kernel unavailable")
@pytest.mark.parametrize(
    "engine_kernel,oracle_kernel", (("numpy", "scalar"), ("scalar", "numpy"))
)
@given(ops=_ops)
@settings(deadline=None, max_examples=25)
def test_cross_kernel_bit_identity(engine_kernel, oracle_kernel, ops):
    """Engines on one kernel, oracle on the other: still bit-identical."""
    run_differential(ops, 3, engine_kernel=engine_kernel, oracle_kernel=oracle_kernel)

"""Tests for collection-level flex-offer validation."""

from __future__ import annotations

from dataclasses import replace
from datetime import timedelta

from repro.flexoffer.model import FlexOfferState
from repro.flexoffer.validation import IssueSeverity, errors_only, is_valid, validate_collection
from tests.conftest import make_offer


class TestValidateCollection:
    def test_clean_collection_has_no_issues(self, offer_batch, grid):
        assert validate_collection(offer_batch, grid) == []
        assert is_valid(offer_batch, grid)

    def test_duplicate_ids_reported(self, grid):
        offers = [make_offer(offer_id=1), make_offer(offer_id=1)]
        issues = validate_collection(offers, grid)
        assert any("duplicate" in issue.message for issue in issues)
        assert not is_valid(offers, grid)

    def test_acceptance_after_start_is_warning(self, grid):
        offer = make_offer()
        late = replace(
            offer,
            acceptance_deadline=grid.to_datetime(offer.earliest_start_slot) + timedelta(hours=1),
            assignment_deadline=grid.to_datetime(offer.earliest_start_slot) + timedelta(hours=1),
        )
        issues = validate_collection([late], grid)
        warning = [issue for issue in issues if issue.severity is IssueSeverity.WARNING]
        assert warning
        # Warnings alone do not make the collection invalid.
        assert is_valid([late], grid) or errors_only(issues)

    def test_assignment_after_latest_start_is_error(self, grid):
        offer = make_offer(time_flexibility=2)
        bad = replace(
            offer,
            assignment_deadline=grid.to_datetime(offer.latest_start_slot) + timedelta(hours=5),
        )
        issues = errors_only(validate_collection([bad], grid))
        assert any("assignment deadline" in issue.message for issue in issues)

    def test_assigned_without_schedule_is_error(self, grid):
        offer = replace(make_offer(), state=FlexOfferState.ASSIGNED)
        issues = errors_only(validate_collection([offer], grid))
        assert any("requires a schedule" in issue.message for issue in issues)

    def test_self_referencing_aggregate_is_error(self, grid):
        offer = replace(make_offer(offer_id=9), is_aggregate=True, constituent_ids=(9,))
        issues = errors_only(validate_collection([offer], grid))
        assert any("constituent" in issue.message for issue in issues)

    def test_issue_carries_offer_id(self, grid):
        offers = [make_offer(offer_id=4), make_offer(offer_id=4)]
        issues = validate_collection(offers, grid)
        assert issues[0].offer_id == 4

    def test_errors_only_filters_warnings(self, grid):
        offer = make_offer()
        late = replace(
            offer,
            acceptance_deadline=grid.to_datetime(offer.earliest_start_slot) + timedelta(minutes=30),
            assignment_deadline=grid.to_datetime(offer.earliest_start_slot) + timedelta(minutes=45),
        )
        issues = validate_collection([late], grid)
        assert issues
        assert len(errors_only(issues)) < len(issues)

"""Tests for the market model, settlement and the full planning cycle."""

from __future__ import annotations

import pytest

from repro.enterprise.market import MarketConfig, SpotMarket, Trade, TradeSide
from repro.enterprise.planning import PlanningConfig, run_planning_cycle
from repro.enterprise.settlement import RealizationConfig, simulate_realization
from repro.errors import SchedulingError
from repro.flexoffer.model import FlexOfferState
from repro.forecasting.models import SeasonalNaiveForecast
from repro.scheduling.greedy import GreedyScheduler
from repro.timeseries.series import TimeSeries


class TestSpotMarket:
    def test_empty_prices_rejected(self, grid):
        with pytest.raises(SchedulingError):
            SpotMarket(TimeSeries(grid, 0, []))

    def test_price_lookup_clamps_to_ends(self, grid):
        market = SpotMarket(TimeSeries(grid, 10, [40.0, 50.0], unit="EUR/MWh"))
        assert market.price_at(0) == 40.0
        assert market.price_at(11) == 50.0
        assert market.price_at(99) == 50.0

    def test_clear_residual_buys_deficit_and_sells_surplus(self, grid):
        market = SpotMarket(TimeSeries(grid, 0, [50.0] * 4))
        residual = TimeSeries(grid, 0, [10.0, -8.0, 0.5, 0.0])
        trades = market.clear_residual(residual)
        assert [trade.side for trade in trades] == [TradeSide.BUY, TradeSide.SELL]
        assert trades[0].energy_kwh == 10.0

    def test_small_residuals_skipped(self, grid):
        market = SpotMarket(TimeSeries(grid, 0, [50.0]), MarketConfig(minimum_trade_kwh=5.0))
        trades = market.clear_residual(TimeSeries(grid, 0, [4.0]))
        assert trades == []

    def test_trade_cost_signs(self, grid):
        market = SpotMarket(TimeSeries(grid, 0, [100.0] * 2))
        buy = Trade(slot=0, side=TradeSide.BUY, energy_kwh=1000.0, price_eur_per_mwh=100.0)
        sell = Trade(slot=1, side=TradeSide.SELL, energy_kwh=1000.0, price_eur_per_mwh=100.0)
        assert buy.cost_eur == pytest.approx(100.0)
        assert sell.cost_eur == pytest.approx(-100.0)
        assert market.trade_cost([buy, sell]) == pytest.approx(0.0)

    def test_imbalance_cost_uses_multiplier(self, grid):
        market = SpotMarket(TimeSeries(grid, 0, [100.0]), MarketConfig(imbalance_multiplier=2.0))
        imbalance = TimeSeries(grid, 0, [1000.0])
        assert market.imbalance_cost(imbalance) == pytest.approx(200.0)


class TestSettlement:
    @pytest.fixture(scope="class")
    def assigned_offers(self, scenario):
        return [offer for offer in scenario.flex_offers if offer.state is FlexOfferState.ASSIGNED]

    def test_full_compliance_means_zero_deviation(self, assigned_offers, scenario):
        result = simulate_realization(
            assigned_offers, scenario.grid, RealizationConfig(compliance_probability=1.0, seed=1)
        )
        assert result.total_absolute_deviation == pytest.approx(0.0)
        assert all(offer.state is FlexOfferState.EXECUTED for offer in result.realized_offers)

    def test_non_compliance_creates_deviation(self, assigned_offers, scenario):
        result = simulate_realization(
            assigned_offers, scenario.grid, RealizationConfig(compliance_probability=0.0, seed=2)
        )
        assert result.total_absolute_deviation > 0.0

    def test_realized_offers_stay_feasible(self, assigned_offers, scenario):
        result = simulate_realization(
            assigned_offers, scenario.grid, RealizationConfig(compliance_probability=0.3, seed=3)
        )
        for offer in result.realized_offers:
            if offer.schedule is None:
                continue
            assert offer.earliest_start_slot <= offer.schedule.start_slot <= offer.latest_start_slot

    def test_unassigned_offers_pass_through(self, scenario):
        unassigned = [offer for offer in scenario.flex_offers if offer.schedule is None]
        result = simulate_realization(unassigned, scenario.grid)
        assert result.realized_offers == unassigned
        assert result.total_absolute_deviation == 0.0

    def test_measure_context_exposes_realized_energy(self, assigned_offers, scenario):
        result = simulate_realization(assigned_offers, scenario.grid, RealizationConfig(seed=4))
        context = result.measure_context()
        assert set(context.realized_energy) <= {offer.id for offer in assigned_offers}

    def test_deterministic_given_seed(self, assigned_offers, scenario):
        first = simulate_realization(assigned_offers, scenario.grid, RealizationConfig(seed=5))
        second = simulate_realization(assigned_offers, scenario.grid, RealizationConfig(seed=5))
        assert first.total_absolute_deviation == pytest.approx(second.total_absolute_deviation)


class TestPlanningCycle:
    @pytest.fixture(scope="class")
    def plan(self, scenario):
        return run_planning_cycle(scenario, scheduler=GreedyScheduler())

    def test_every_plannable_offer_assigned(self, plan, scenario):
        plannable = [o for o in scenario.flex_offers if o.state is not FlexOfferState.REJECTED]
        assert len(plan.assigned_offers) == len(plannable)
        assert all(offer.schedule is not None for offer in plan.assigned_offers)

    def test_rejected_offers_untouched(self, plan, scenario):
        rejected = [o for o in scenario.flex_offers if o.state is FlexOfferState.REJECTED]
        assert len(plan.unplanned_offers) == len(rejected)

    def test_planned_load_totals_bounded_by_offers(self, plan, scenario):
        # The planned_load series is clipped to the planning horizon, so its total
        # is at most the signed energy of all assignments (offers scheduled near the
        # end of the day spill past the horizon) and strictly positive.
        signed_total = sum(offer.scheduled_energy * offer.direction.sign for offer in plan.assigned_offers)
        assert 0.0 < plan.planned_load.total() <= signed_total + 1e-6

    def test_balancing_improves_overlap(self, plan):
        """The headline claim of Figure 1: planning moves flexible load under the RES surplus."""
        import numpy as np

        target = plan.target
        before = np.minimum(target.values, np.clip(plan.unplanned_load.values, 0, None)).sum()
        after = np.minimum(target.values, np.clip(plan.planned_load.values, 0, None)).sum()
        assert after >= before

    def test_residual_is_target_minus_load(self, plan):
        expected = plan.target - plan.planned_load
        assert plan.residual.values == pytest.approx(expected.values)

    def test_trades_only_for_significant_residual(self, plan):
        assert all(trade.energy_kwh >= 1.0 for trade in plan.trades)

    def test_costs_are_finite_and_nonnegative(self, plan):
        assert plan.imbalance_cost_eur >= 0.0
        assert plan.trade_cost_eur == plan.trade_cost_eur  # not NaN

    def test_settlement_ran(self, plan):
        assert plan.settlement.realized_offers
        assert plan.settlement.total_absolute_deviation >= 0.0

    def test_without_aggregation(self, scenario):
        plan = run_planning_cycle(
            scenario, scheduler=GreedyScheduler(), config=PlanningConfig(use_aggregation=False)
        )
        plannable = [o for o in scenario.flex_offers if o.state is not FlexOfferState.REJECTED]
        assert plan.pipeline.scheduled_object_count == len(plannable)

    def test_with_demand_forecaster(self, scenario):
        plan = run_planning_cycle(
            scenario,
            scheduler=GreedyScheduler(),
            demand_forecaster=SeasonalNaiveForecast(season_length=scenario.grid.slots_per_day()),
        )
        assert len(plan.target) == len(scenario.base_demand)

    def test_all_offers_property(self, plan, scenario):
        assert len(plan.all_offers) == len(scenario.flex_offers)

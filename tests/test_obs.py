"""The observability layer: instruments, spans, exporters, and the contract
that instrumentation never changes engine outputs.

Unit tests build their own :class:`MetricsRegistry` instances so they cannot
interfere with the process-global one; the integration tests that do touch
the global registry go through the ``global_obs`` fixture, which leaves it
disabled and zeroed no matter how the test exits.
"""

from __future__ import annotations

import json
import re
import threading
from collections import Counter as TallyCounter
from io import StringIO

import pytest

from repro import obs
from repro.aggregation.kernel import (
    NUMPY_MIN_SLOTS,
    calibrate,
    effective_min_slots,
    set_min_slots,
)
from repro.errors import ObservabilityError
from repro.live.engine import LiveAggregationEngine, canonical_form
from repro.live.replay import replay, scenario_event_stream
from repro.live.sharded import ShardedAggregationEngine
from repro.obs.export import export_jsonl, read_jsonl_export, to_prometheus_text
from repro.obs.metrics import COUNT_BUCKETS, LATENCY_BUCKETS, MetricsRegistry
from repro.obs.trace import Tracer
from repro.session import FlexSession


@pytest.fixture
def registry() -> MetricsRegistry:
    """A private, enabled registry (never the process-global one)."""
    return MetricsRegistry(enabled=True)


@pytest.fixture
def global_obs():
    """The process-global registry, guaranteed disabled + zeroed afterwards."""
    obs.reset()
    try:
        yield obs.get_registry()
    finally:
        obs.disable()
        obs.reset()


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------
def test_counter_counts_and_rejects_decrease(registry):
    counter = registry.counter("c", "help text")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ObservabilityError):
        counter.inc(-1)
    counter.reset()
    assert counter.value == 0.0


def test_gauge_track_vs_set_disabled_semantics():
    registry = MetricsRegistry(enabled=False)
    gauge = registry.gauge("g")
    gauge.track(7)  # hot-path setter is a no-op while disabled...
    assert gauge.value == 0.0
    gauge.set(7)  # ...the read-side refresh always writes.
    assert gauge.value == 7.0
    registry.enable()
    gauge.track(3)
    assert gauge.value == 3.0


def test_disabled_registry_is_a_no_op(registry):
    registry.disable()
    counter = registry.counter("c")
    histogram = registry.histogram("h")
    counter.inc(100)
    counter.inc(-100)  # not even validated on the disabled path
    histogram.observe(1.0)
    assert counter.value == 0.0
    assert histogram.count == 0


def test_instruments_are_singletons_per_name(registry):
    assert registry.counter("x") is registry.counter("x")
    assert registry.histogram("h", boundaries=(1.0, 2.0)) is registry.histogram(
        "h", boundaries=(1.0, 2.0)
    )
    with pytest.raises(ObservabilityError):
        registry.gauge("x")  # same name, different kind
    with pytest.raises(ObservabilityError):
        registry.histogram("h", boundaries=(1.0, 3.0))  # would split the series


# ----------------------------------------------------------------------
# Histogram bucket edges
# ----------------------------------------------------------------------
def test_histogram_boundary_values_use_le_semantics(registry):
    """An observation exactly on a boundary counts in that boundary's bucket."""
    histogram = registry.histogram("h", boundaries=(1.0, 2.0, 5.0))
    for value in (1.0, 1.5, 2.0, 5.0, 7.0):
        histogram.observe(value)
    # Buckets: <=1, <=2, <=5, +Inf.
    assert histogram.bucket_counts() == [1, 2, 1, 1]
    assert histogram.cumulative_counts() == [1, 3, 4, 5]
    assert histogram.count == 5
    assert histogram.sum == pytest.approx(16.5)
    assert histogram.mean == pytest.approx(3.3)
    snapshot = histogram.snapshot()
    assert snapshot["min"] == 1.0 and snapshot["max"] == 7.0


def test_histogram_quantiles_clamp_to_true_extremes(registry):
    histogram = registry.histogram("h", boundaries=(1.0, 10.0))
    histogram.observe(4.0)
    histogram.observe(6.0)
    assert histogram.quantile(0.0) == 4.0  # clamped to the true minimum
    assert histogram.quantile(1.0) == 6.0  # clamped to the true maximum
    assert 4.0 <= histogram.quantile(0.5) <= 6.0
    with pytest.raises(ObservabilityError):
        histogram.quantile(1.5)
    empty = registry.histogram("empty")
    assert empty.quantile(0.95) == 0.0


def test_histogram_boundary_validation(registry):
    with pytest.raises(ObservabilityError):
        registry.histogram("bad", boundaries=())
    with pytest.raises(ObservabilityError):
        registry.histogram("bad", boundaries=(1.0, 1.0))
    with pytest.raises(ObservabilityError):
        registry.histogram("bad", boundaries=(2.0, 1.0))


def test_default_bucket_ladders_are_strictly_increasing():
    for ladder in (LATENCY_BUCKETS, COUNT_BUCKETS):
        assert all(b2 > b1 for b1, b2 in zip(ladder, ladder[1:]))


def test_registry_partial_reset(registry):
    registry.counter("a").inc(5)
    registry.counter("b").inc(7)
    registry.reset(names=["a", "missing-is-fine"])
    assert registry.get("a").value == 0.0
    assert registry.get("b").value == 7.0


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
def test_span_nesting_records_parent_and_depth(registry):
    tracer = Tracer(registry)
    with tracer.span("outer"):
        with tracer.span("inner"):
            with tracer.span("inner"):  # reentrant: same name nests again
                pass
    records = tracer.finished()
    assert [(r.name, r.depth, r.parent) for r in records] == [
        ("inner", 2, "inner"),
        ("inner", 1, "outer"),
        ("outer", 0, None),
    ]
    assert all(r.duration >= 0.0 for r in records)


def test_span_closes_and_records_on_exception(registry):
    tracer = Tracer(registry)
    with pytest.raises(RuntimeError):
        with tracer.span("failing"):
            raise RuntimeError("boom")
    (record,) = tracer.finished()
    assert record.name == "failing" and record.depth == 0
    # The stack fully unwound: the next span is a root again.
    with tracer.span("after"):
        pass
    assert tracer.finished(limit=1)[0].parent is None


def test_spans_disabled_mode_allocates_nothing(registry):
    registry.disable()
    tracer = Tracer(registry)
    first = tracer.span("a")
    second = tracer.span("b")
    assert first is second  # the shared no-op context manager
    with first:
        pass
    assert tracer.finished() == []


def test_span_stacks_are_per_thread(registry):
    tracer = Tracer(registry)
    seen = []

    def worker():
        with tracer.span("worker.commit"):
            pass
        seen.append(True)

    with tracer.span("main.outer"):
        thread = threading.Thread(target=worker, name="obs-worker")
        thread.start()
        thread.join()
    worker_span = next(r for r in tracer.finished() if r.name == "worker.commit")
    # The main thread's open span is not the worker span's parent.
    assert worker_span.parent is None and worker_span.depth == 0
    assert worker_span.thread == "obs-worker"


def test_finished_filtering_and_limit(registry):
    tracer = Tracer(registry)
    for index in range(5):
        with tracer.span("a" if index % 2 else "b"):
            pass
    assert len(tracer.finished(name="a")) == 2
    assert len(tracer.finished(limit=3)) == 3
    tracer.clear()
    assert tracer.finished() == []


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def _populated(registry: MetricsRegistry) -> Tracer:
    registry.counter("repro.test.count", "events seen").inc(3)
    registry.gauge("repro.test.depth", "queue depth").set(7)
    histogram = registry.histogram(
        "repro.test.seconds", "latency", boundaries=(0.001, 0.01, 0.1)
    )
    for value in (0.0005, 0.005, 0.05, 0.5):
        histogram.observe(value)
    tracer = Tracer(registry)
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    return tracer


def test_jsonl_export_round_trips(tmp_path, registry):
    tracer = _populated(registry)
    path = tmp_path / "dump.jsonl"
    lines = export_jsonl(path, registry, tracer)
    assert lines == 3 + 2  # three instruments, two finished spans
    metrics, spans = read_jsonl_export(path)
    assert metrics == registry.snapshot()
    assert spans == tracer.finished()
    # Every line is a standalone JSON document with a record discriminator.
    for row in path.read_text(encoding="utf-8").splitlines():
        assert json.loads(row)["record"] in ("metric", "span")


def test_jsonl_export_accepts_file_objects(registry):
    tracer = _populated(registry)
    buffer = StringIO()
    export_jsonl(buffer, registry, tracer)
    metrics, spans = read_jsonl_export(buffer.getvalue().splitlines())
    assert metrics == registry.snapshot()
    assert [s.name for s in spans] == ["inner", "outer"]


_HELP_RE = re.compile(r"^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* \S.*$")
_TYPE_RE = re.compile(r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$")
# A label value is any run of non-reserved characters or the three escape
# sequences the text format defines: \\, \" and \n.
_LABEL_VALUE = r'(?:[^"\\\n]|\\\\|\\"|\\n)*'
_LABEL_PAIR = r'[a-zA-Z_][a-zA-Z0-9_]*="' + _LABEL_VALUE + r'"'
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    + r"(\{" + _LABEL_PAIR + r"(," + _LABEL_PAIR + r")*\})?"
    + r" (\+Inf|-Inf|-?[0-9][0-9eE.+-]*)$"
)


def test_prometheus_text_grammar_and_histogram_series(registry):
    _populated(registry)
    text = to_prometheus_text(registry)
    assert text.endswith("\n")
    for line in text.rstrip("\n").splitlines():
        assert (
            _HELP_RE.match(line) or _TYPE_RE.match(line) or _SAMPLE_RE.match(line)
        ), f"not valid exposition format: {line!r}"
    # Histogram series: cumulative buckets ending in +Inf == _count.
    buckets = [
        int(line.rsplit(" ", 1)[1])
        for line in text.splitlines()
        if line.startswith("repro_test_seconds_bucket")
    ]
    assert buckets == sorted(buckets)
    assert 'le="+Inf"} 4' in text
    assert "repro_test_seconds_count 4" in text
    # Dotted names sanitize to identifiers, and empty registries export empty.
    assert obs.prometheus_name("repro.live.commit.seconds") == "repro_live_commit_seconds"
    assert to_prometheus_text(MetricsRegistry()) == ""


# ----------------------------------------------------------------------
# The no-observable-effect contract
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    ("engine_factory", "commit_metric"),
    (
        (LiveAggregationEngine, "repro.live.commit.count"),
        (ShardedAggregationEngine, "repro.live.sharded.commit.seconds"),
    ),
)
def test_instrumented_replay_is_bit_identical(
    global_obs, engine_factory, commit_metric, scenario
):
    """Flipping observability on must not change a single aggregate bit."""

    def run(instrumented: bool):
        engine = engine_factory()
        log = scenario_event_stream(
            scenario, update_fraction=0.1, withdraw_fraction=0.05, seed=7
        )
        obs.reset()
        if instrumented:
            obs.enable()
        try:
            replay(log, engine)
        finally:
            obs.disable()
        return TallyCounter(canonical_form(offer) for offer in engine.aggregated_offers())

    baseline = run(instrumented=False)
    instrumented = run(instrumented=True)
    assert baseline == instrumented  # exact equality, no tolerance
    # And the instrumented run actually recorded commits for this engine.
    commits = obs.get_registry().get(commit_metric)
    assert commits is not None
    recorded = commits.value if hasattr(commits, "value") else commits.count
    assert recorded > 0


def test_session_metrics_and_trace_surface(global_obs, scenario):
    session = FlexSession(scenario, engine="live", live_preload=False)
    obs.enable()
    log = scenario_event_stream(scenario, update_fraction=0.1, seed=7)
    session.replay(log.replay_order())
    session.offers().where(state="assigned").fetch()
    obs.disable()
    metrics = session.metrics()
    assert metrics["repro.live.commit.count"]["value"] > 0
    assert metrics["repro.session.query.count"]["value"] >= 1
    spans = session.trace(name="live.commit")
    assert spans and all(span.name == "live.commit" for span in spans)
    session.close()


def test_summary_reports_engine_depth_figures(scenario):
    sharded = FlexSession(scenario, engine="sharded", live_preload=False)
    assert sharded.summary()["dirty_shards"] == 0
    sharded.close()
    asynchronous = FlexSession(scenario, engine="async", live_preload=False)
    summary = asynchronous.summary()
    assert summary["queue_depth"] == 0 and summary["dirty_shards"] == 0
    asynchronous.close()
    batch = FlexSession(scenario, engine="batch")
    assert "queue_depth" not in batch.summary()
    batch.close()


# ----------------------------------------------------------------------
# Kernel-threshold calibration (the adaptive NUMPY_MIN_SLOTS satellite)
# ----------------------------------------------------------------------
def test_calibrate_returns_and_installs_a_threshold():
    try:
        threshold = calibrate(ladder=(16, 64), repeats=1, install=False)
        assert threshold >= 1
        assert effective_min_slots() == NUMPY_MIN_SLOTS  # install=False
        set_min_slots(threshold)
        assert effective_min_slots() == threshold
        with pytest.raises(Exception):
            set_min_slots(0)
    finally:
        set_min_slots(None)
    assert effective_min_slots() == NUMPY_MIN_SLOTS


# ----------------------------------------------------------------------
# The operator entry point
# ----------------------------------------------------------------------
def test_flexviz_stats_smoke(global_obs, capsys):
    from repro.app.cli import main

    assert main(["--prosumers", "40", "stats", "--smoke"]) == 0
    out = capsys.readouterr().out
    assert "stage" in out
    for fragment in ("commit", "query", "store.checkpoint", "store.restore"):
        assert fragment in out, f"stats table is missing the {fragment} stage"
    assert "stats smoke OK" in out
    # The command cleans up after itself: global observability is off again.
    assert not obs.enabled()


# ----------------------------------------------------------------------
# Labeled series (the sharded per-shard fan-out instrumentation)
# ----------------------------------------------------------------------
def test_labeled_instruments_are_independent_series(registry):
    total = registry.counter("repro.test.fanout", "fan-out total")
    shard0 = registry.counter("repro.test.fanout", "fan-out total", labels={"shard": "0"})
    shard1 = registry.counter("repro.test.fanout", labels={"shard": "1"})
    assert shard0 is not total and shard0 is not shard1
    # Same (name, labels) pair returns the same instrument object.
    assert registry.counter("repro.test.fanout", labels={"shard": "0"}) is shard0
    assert registry.get("repro.test.fanout", {"shard": "1"}) is shard1
    total.inc(1)
    shard0.inc(2)
    shard1.inc(3)
    snapshot = registry.snapshot()
    assert snapshot["repro.test.fanout"]["value"] == 1
    assert "labels" not in snapshot["repro.test.fanout"]
    assert snapshot['repro.test.fanout{shard="0"}']["value"] == 2
    assert snapshot['repro.test.fanout{shard="0"}']["labels"] == {"shard": "0"}
    assert snapshot['repro.test.fanout{shard="1"}']["value"] == 3


def test_prometheus_labeled_series_share_one_header(registry):
    base = registry.histogram("repro.test.fan.seconds", "per-shard drain")
    shard = registry.histogram(
        "repro.test.fan.seconds", "per-shard drain", labels={"shard": "3"}
    )
    base.observe(0.002)
    shard.observe(0.004)
    text = to_prometheus_text(registry)
    # One HELP/TYPE header for the base name, labels only on sample lines.
    assert text.count("# TYPE repro_test_fan_seconds histogram") == 1
    assert text.count("# HELP repro_test_fan_seconds ") == 1
    assert 'repro_test_fan_seconds_bucket{shard="3",le="' in text
    assert 'repro_test_fan_seconds_sum{shard="3"}' in text
    assert 'repro_test_fan_seconds_count{shard="3"} 1' in text
    assert "repro_test_fan_seconds_count 1" in text  # the unlabeled series
    for line in text.rstrip("\n").splitlines():
        assert (
            _HELP_RE.match(line) or _TYPE_RE.match(line) or _SAMPLE_RE.match(line)
        ), f"not valid exposition format: {line!r}"


def test_jsonl_round_trip_keeps_labels(registry):
    shard = registry.counter("repro.test.fanout", "fan-out total", labels={"shard": "5"})
    shard.inc(4)
    buffer = StringIO()
    export_jsonl(buffer, registry)
    metrics, _ = read_jsonl_export(buffer.getvalue().splitlines())
    key = 'repro.test.fanout{shard="5"}'
    assert metrics[key]["value"] == 4
    assert metrics[key]["labels"] == {"shard": "5"}


#: Label values that used to corrupt the exposition text / instrument keys:
#: a raw quote terminates the quoted value early, a raw backslash forges an
#: escape, a raw newline splits the sample line in two.
_ADVERSARIAL_VALUES = (
    'say "hi"',
    "back\\slash",
    "line\nbreak",
    'all \\ of "them"\nat once',
    "trailing backslash\\",
)


@pytest.mark.parametrize("value", _ADVERSARIAL_VALUES)
def test_prometheus_text_escapes_adversarial_label_values(registry, value):
    counter = registry.counter("repro.test.hostile", "hostile labels", labels={"q": value})
    counter.inc(2)
    text = to_prometheus_text(registry)
    lines = text.rstrip("\n").splitlines()
    for line in lines:
        assert (
            _HELP_RE.match(line) or _TYPE_RE.match(line) or _SAMPLE_RE.match(line)
        ), f"not valid exposition format: {line!r}"
    # Exactly one sample line — a raw newline in the value must not split it.
    samples = [line for line in lines if line.startswith("repro_test_hostile{")]
    assert len(samples) == 1
    assert "\n" not in samples[0]


def test_histogram_bucket_lines_escape_labels(registry):
    histogram = registry.histogram(
        "repro.test.hostile.seconds", "hostile labels", labels={"q": 'a"b\\c\nd'}
    )
    histogram.observe(0.003)
    text = to_prometheus_text(registry)
    for line in text.rstrip("\n").splitlines():
        assert (
            _HELP_RE.match(line) or _TYPE_RE.match(line) or _SAMPLE_RE.match(line)
        ), f"not valid exposition format: {line!r}"
    # The le= label merges after the escaped label body, still well-formed.
    assert 'repro_test_hostile_seconds_bucket{q="a\\"b\\\\c\\nd",le="' in text


def test_escaping_is_injective_keys_never_collide(registry):
    """Two values that rendered identically before escaping stay distinct."""
    from repro.obs.metrics import escape_label_value, instrument_key

    # ('a\nb' raw newline) vs ('a\\nb' literal backslash-n): unescaped both
    # rendered as the same two-line text; escaped they differ.
    pairs = (("a\nb", "a\\nb"), ('x"y', 'x\\"y'), ("p\\", "p\\\\"))
    for left, right in pairs:
        assert escape_label_value(left) != escape_label_value(right)
        assert instrument_key("n", {"k": left}) != instrument_key("n", {"k": right})
        one = registry.counter("repro.test.pair", labels={"k": left})
        two = registry.counter("repro.test.pair", labels={"k": right})
        assert one is not two, f"{left!r} and {right!r} collided on one series"


@pytest.mark.parametrize("value", _ADVERSARIAL_VALUES)
def test_jsonl_keys_round_trip_adversarial_labels(registry, value):
    """read_jsonl_export re-derives the same instrument key from raw labels."""
    labels = {"q": value, "shard": "3"}
    counter = registry.counter("repro.test.hostile", "hostile labels", labels=labels)
    counter.inc(7)
    buffer = StringIO()
    export_jsonl(buffer, registry)
    metrics, _ = read_jsonl_export(buffer.getvalue().splitlines())
    assert counter.key in metrics, (
        "JSONL export corrupted the instrument key for an adversarial label"
    )
    assert metrics[counter.key]["value"] == 7
    # The payload carries the *raw* label values, unescaped.
    assert metrics[counter.key]["labels"] == labels
    # And the registry snapshot agrees with the export on every key.
    assert set(metrics) == set(registry.snapshot())


def test_sharded_commit_records_per_shard_fanout_series(global_obs, scenario):
    obs.enable()
    session = FlexSession(scenario, engine="sharded")  # preload commits
    obs.disable()
    try:
        snapshot = global_obs.snapshot()
        keys = [
            key
            for key in snapshot
            if key.startswith("repro.live.sharded.fanout.seconds{")
        ]
        assert keys, "no per-shard fan-out series recorded"
        assert all(
            re.fullmatch(r'repro\.live\.sharded\.fanout\.seconds\{shard="\d+"\}', key)
            for key in keys
        )
        assert all(snapshot[key]["count"] >= 1 for key in keys)
    finally:
        session.close()

"""Integration tests: the full pipelines end to end.

These tests exercise the chains a real user of the library walks through:
scenario -> warehouse -> loading -> views, scenario -> planning cycle ->
views, aggregation -> scheduling -> disaggregation -> settlement -> OLAP with
plan deviations, and the framework's tab workflow across all view kinds.
"""

from __future__ import annotations

import pytest

from repro.aggregation import AggregationParameters
from repro.enterprise import PlanningConfig, RealizationConfig, run_planning_cycle
from repro.flexoffer import FlexOfferState, count_by_state, from_json, to_json
from repro.olap import FlexOfferCube, GroupBy, MemberFilter, execute
from repro.scheduling import GreedyScheduler
from repro.views import (
    BasicView,
    DashboardView,
    ProfileView,
    SelectionRectangle,
    ViewKind,
    VisualAnalysisFramework,
)
from repro.warehouse import FlexOfferFilter, FlexOfferRepository, load_scenario, load_schema, save_schema


class TestWarehouseToViews:
    def test_persist_reload_and_render(self, scenario, tmp_path):
        """Scenario -> warehouse CSVs -> reload -> repository -> basic view."""
        schema = load_scenario(scenario)
        save_schema(schema, tmp_path / "dw")
        reloaded = load_schema(tmp_path / "dw")
        repository = FlexOfferRepository(reloaded, scenario.grid)
        offers = repository.load(FlexOfferFilter(states=("assigned",))).offers
        assert offers
        view = BasicView(offers, scenario.grid)
        svg = view.to_svg()
        assert svg.count("profile-box") == len(offers)

    def test_json_export_import_preserves_view(self, scenario):
        offers = from_json(to_json(scenario.flex_offers))
        original = BasicView(scenario.flex_offers, scenario.grid).to_svg()
        rebuilt = BasicView(offers, scenario.grid).to_svg()
        assert original == rebuilt


class TestPlanningToAnalysis:
    @pytest.fixture(scope="class")
    def plan(self, large_scenario):
        return run_planning_cycle(
            large_scenario,
            scheduler=GreedyScheduler(),
            config=PlanningConfig(
                use_aggregation=True,
                aggregation=AggregationParameters(est_tolerance_slots=8, time_flexibility_tolerance_slots=8),
                realization=RealizationConfig(compliance_probability=0.7, seed=3),
            ),
        )

    def test_planning_produces_assignments_for_views(self, plan, large_scenario):
        counts = count_by_state(plan.all_offers)
        assert counts[FlexOfferState.ASSIGNED] > 0
        dashboard = DashboardView(plan.all_offers, large_scenario.grid)
        assert sum(dashboard.state_totals().values()) > 0

    def test_plan_deviation_measure_via_olap(self, plan, large_scenario):
        """Settlement feeds the OLAP plan_deviation measure (Req. 2)."""
        cube = FlexOfferCube(
            plan.settlement.realized_offers,
            large_scenario.grid,
            context=plan.settlement.measure_context(),
        )
        cell_set = cube.aggregate([GroupBy("Geography", "region")], ["plan_deviation", "scheduled_energy"])
        totals = cell_set.totals()
        assert totals["plan_deviation"] >= 0.0
        assert totals["scheduled_energy"] > 0.0

    def test_balancing_claim_on_large_scenario(self, plan):
        """Figure 1's qualitative claim must hold at scale: planning never reduces the overlap."""
        import numpy as np

        target = plan.target.values
        before = np.minimum(target, np.clip(plan.unplanned_load.values, 0, None)).sum()
        after = np.minimum(target, np.clip(plan.planned_load.values, 0, None)).sum()
        assert after >= before * 0.99

    def test_mdx_over_planned_offers(self, plan, large_scenario):
        cube = FlexOfferCube(plan.all_offers, large_scenario.grid)
        table = execute(
            cube,
            "SELECT {[Measures].[scheduled_energy]} ON COLUMNS, "
            "{[Appliance].[appliance_type].Members} ON ROWS FROM [FlexOffers] "
            "WHERE ([State].[state].[assigned])",
        )
        assert sum(row[0] for row in table.values["value"]) > 0


class TestFrameworkWorkflow:
    def test_full_analyst_session(self, scenario):
        """The Section-4 walk-through: load, view, select, aggregate, drill."""
        framework = VisualAnalysisFramework(scenario)

        # Load everything, look at the basic view.
        tab = framework.open_tab_for_all()
        basic = tab.view()
        assert "<svg" in basic.to_svg()

        # Rectangle-select the first quarter of the timeline and extract it.
        area = basic.options.plot_area
        tab.selection.select_rectangle(
            basic, SelectionRectangle(area.left, area.top, area.left + area.width / 4, area.bottom)
        )
        selection_tab = tab.extract_selection("early offers")
        assert 0 < len(selection_tab.offers) < len(tab.offers)

        # Switch the selection tab to the profile view (detail analysis).
        selection_tab.switch_view(ViewKind.PROFILE)
        profile = selection_tab.view()
        assert isinstance(profile, ProfileView)
        assert "energy-band" in profile.to_svg()

        # Aggregate the main tab and confirm the reduction shows up in the view.
        before_count = len(tab.offers)
        tab.apply_aggregation(AggregationParameters(est_tolerance_slots=8, time_flexibility_tolerance_slots=8))
        assert len(tab.offers) <= before_count
        assert "aggregated" in tab.view().to_svg()

        # Check the OLAP path: pivot over the aggregated tab, then map/schematic.
        tab.switch_view(ViewKind.PIVOT)
        assert "swimlane" in tab.view().to_svg()
        tab.switch_view(ViewKind.MAP)
        assert "state-bar" in tab.view().to_svg()
        tab.switch_view(ViewKind.SCHEMATIC)
        assert "state-wedge" in tab.view().to_svg()

        # Detail record of an aggregate lists its constituents (Figure 10).
        aggregate_offer = next((o for o in tab.offers if o.is_aggregate), None)
        if aggregate_offer is not None:
            details = tab.details_of(aggregate_offer.id)
            assert details.is_aggregate
            assert details.constituent_ids

    def test_cube_filters_match_repository_filters(self, scenario):
        """The OLAP dice and the warehouse filter must agree on the same predicate."""
        framework = VisualAnalysisFramework(scenario)
        repo_offers = framework.repository.load(FlexOfferFilter(regions=("Capital",))).offers
        cube = FlexOfferCube(scenario.flex_offers, scenario.grid)
        cube_offers = cube.filter([MemberFilter("Geography", "region", ("Capital",))]).offers
        assert {offer.id for offer in repo_offers} == {offer.id for offer in cube_offers}

"""Property tests for the chunk-granular dirty ledger.

The contract under test: a commit re-aggregates *exactly* the chunks the
applied events perturbed — observable through the ``chunks_reaggregated`` /
``chunks_skipped`` counters on :class:`~repro.live.engine.CommitResult` —
while staying bit-identical to the batch pipeline.  Covered: targeted
single-offer mutations (price and state), chunk-boundary shifts on insert
and withdraw, the ``max_group_size=0`` unlimited case, and the sharded
engine's per-shard ledgers merging into one logical commit.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import replace
from datetime import timedelta

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregation.grouping import chunk_assignment, chunk_count, chunks_from
from repro.aggregation.parameters import AggregationParameters
from repro.live.engine import LiveAggregationEngine, canonical_form
from repro.live.events import OfferAdded, OfferStateChanged, OfferUpdated, OfferWithdrawn
from repro.live.sharded import ShardedAggregationEngine
from repro.flexoffer.model import FlexOfferState
from tests.conftest import make_offer

#: One grid cell, chunked: 64 members in chunks of 4 -> 16 chunks.
MEMBERS, CHUNK, CHUNKS = 64, 4, 16

ENGINES = ("live", "sharded")


def build_engine(name: str, max_group_size: int = CHUNK, members: int = MEMBERS):
    """A committed engine holding one cell of ``members`` chunked offers."""
    parameters = AggregationParameters(max_group_size=max_group_size)
    engine = (
        LiveAggregationEngine(parameters)
        if name == "live"
        else ShardedAggregationEngine(parameters, shard_count=3, parallel=False)
    )
    for index in range(1, members + 1):
        offer = make_offer(offer_id=index, earliest_start=40, time_flexibility=8)
        engine.apply(OfferAdded(offer.creation_time, offer))
    engine.commit()
    return engine


def assert_batch_identical(engine) -> None:
    live = Counter(canonical_form(offer) for offer in engine.aggregated_offers())
    batch = Counter(canonical_form(offer) for offer in engine.batch_equivalent().offers)
    assert live == batch


class TestHelpers:
    def test_chunk_count(self):
        assert chunk_count(0, 4) == 0
        assert chunk_count(7, 4) == 2
        assert chunk_count(8, 4) == 2
        assert chunk_count(9, 4) == 3
        assert chunk_count(9, 0) == 1

    def test_chunk_assignment_matches_sorted_rank(self):
        ids = [2, 5, 9, 11, 20, 31]
        assert chunk_assignment(ids, 2, 2) == 0
        assert chunk_assignment(ids, 9, 2) == 1
        assert chunk_assignment(ids, 31, 2) == 2
        assert chunk_assignment(ids, 31, 0) == 0

    def test_chunks_from_suffix_rule(self):
        ids = [2, 5, 9, 11, 20, 31]
        assert list(chunks_from(ids, 2, 2)) == [0, 1, 2]
        assert list(chunks_from(ids, 11, 2)) == [1, 2]
        assert list(chunks_from(ids, 99, 2)) == []
        # Unlimited: the single chunk is always perturbed.
        assert list(chunks_from(ids, 11, 0)) == [0]


@pytest.mark.parametrize("engine_name", ENGINES)
class TestSingleOfferMutation:
    @given(victim=st.integers(min_value=1, max_value=MEMBERS))
    @settings(deadline=None)
    def test_price_mutation_touches_exactly_one_chunk(self, engine_name, victim):
        engine = build_engine(engine_name)
        current = engine.offer(victim)
        engine.apply(
            OfferUpdated(current.creation_time, replace(current, price_per_kwh=99.9))
        )
        assert engine.dirty_chunk_count == 1
        result = engine.commit()
        assert result.chunks_reaggregated == 1
        assert result.chunks_skipped == CHUNKS - 1
        # The one recomputed chunk is the one containing the victim.
        member_ids = list(range(1, MEMBERS + 1))
        expected_chunk = chunk_assignment(member_ids, victim, CHUNK)
        changed_aggregates = [offer for offer in result.changed if offer.is_aggregate]
        assert len(changed_aggregates) == 1
        assert victim in changed_aggregates[0].constituent_ids
        assert min(changed_aggregates[0].constituent_ids) == expected_chunk * CHUNK + 1
        assert_batch_identical(engine)

    @given(victim=st.integers(min_value=1, max_value=MEMBERS))
    @settings(deadline=None)
    def test_state_change_touches_exactly_one_chunk(self, engine_name, victim):
        engine = build_engine(engine_name)
        engine.apply(
            OfferStateChanged(
                engine.offer(victim).creation_time, victim, FlexOfferState.ACCEPTED
            )
        )
        result = engine.commit()
        assert result.chunks_reaggregated == 1
        assert result.chunks_skipped == CHUNKS - 1
        assert_batch_identical(engine)

    def test_unlimited_group_size_has_single_chunk(self, engine_name):
        engine = build_engine(engine_name, max_group_size=0)
        current = engine.offer(7)
        engine.apply(
            OfferUpdated(current.creation_time, replace(current, price_per_kwh=1.23))
        )
        result = engine.commit()
        # max_group_size=0: the whole cell is one chunk; nothing to skip.
        assert result.chunks_reaggregated == 1
        assert result.chunks_skipped == 0
        assert_batch_identical(engine)


@pytest.mark.parametrize("engine_name", ENGINES)
class TestBoundaryShifts:
    @given(new_id=st.integers(min_value=1, max_value=MEMBERS + 1))
    @settings(deadline=None)
    def test_insert_reaggregates_suffix_chunks_only(self, engine_name, new_id):
        """Inserting shifts ranks from the insertion point: suffix recomputes."""
        # Spaced ids leave gaps to insert into mid-membership.
        spaced = build_engine(engine_name, members=0)
        ids = [index * 10 for index in range(1, MEMBERS + 1)]
        for offer_id in ids:
            offer = make_offer(offer_id=offer_id, earliest_start=40, time_flexibility=8)
            spaced.apply(OfferAdded(offer.creation_time, offer))
        spaced.commit()
        inserted = new_id * 10 - 5  # lands just before the new_id-th member
        offer = make_offer(offer_id=inserted, earliest_start=40, time_flexibility=8)
        spaced.apply(OfferAdded(offer.creation_time, offer))
        result = spaced.commit()
        after = sorted(ids + [inserted])
        expected = set(chunks_from(after, inserted, CHUNK))
        assert result.chunks_reaggregated == len(expected)
        assert result.chunks_skipped == chunk_count(len(after), CHUNK) - len(expected)
        assert_batch_identical(spaced)

    @given(victim=st.integers(min_value=1, max_value=MEMBERS))
    @settings(deadline=None)
    def test_withdraw_reaggregates_suffix_chunks_only(self, engine_name, victim):
        engine = build_engine(engine_name)
        offer = engine.offer(victim)
        engine.apply(
            OfferWithdrawn(offer.assignment_deadline + timedelta(minutes=15), victim)
        )
        result = engine.commit()
        after = [index for index in range(1, MEMBERS + 1) if index != victim]
        expected = set(chunks_from(after, victim, CHUNK))
        assert result.chunks_reaggregated == len(expected)
        assert result.chunks_skipped == chunk_count(len(after), CHUNK) - len(expected)
        assert_batch_identical(engine)

    def test_withdrawing_last_member_retires_trailing_chunk(self, engine_name):
        engine = build_engine(engine_name, members=CHUNK * 2 + 1)  # chunks: 4/4/1
        offer = engine.offer(CHUNK * 2 + 1)
        engine.apply(
            OfferWithdrawn(offer.assignment_deadline + timedelta(minutes=15), offer.id)
        )
        result = engine.commit()
        # The trailing singleton chunk vanishes: nothing recomputes, the two
        # full chunks are provably clean, and the raw offer is retired.
        assert result.chunks_reaggregated == 0
        assert result.chunks_skipped == 2
        assert offer.id in result.removed_ids
        assert_batch_identical(engine)


@pytest.mark.parametrize("engine_name", ENGINES)
@given(
    victims=st.sets(st.integers(min_value=1, max_value=MEMBERS), min_size=1, max_size=8)
)
@settings(deadline=None)
def test_multi_mutation_commit_counts_union_of_chunks(engine_name, victims):
    """N in-place mutations re-aggregate exactly the union of their chunks."""
    engine = build_engine(engine_name)
    member_ids = list(range(1, MEMBERS + 1))
    for victim in victims:
        current = engine.offer(victim)
        engine.apply(
            OfferUpdated(
                current.creation_time,
                replace(current, price_per_kwh=current.price_per_kwh + 1.0),
            )
        )
    expected = {chunk_assignment(member_ids, victim, CHUNK) for victim in victims}
    assert engine.dirty_chunk_count == len(expected)
    result = engine.commit()
    assert result.chunks_reaggregated == len(expected)
    assert result.chunks_skipped == CHUNKS - len(expected)
    assert_batch_identical(engine)


def test_clean_commit_touches_nothing():
    engine = build_engine("live")
    result = engine.commit()
    assert result.chunks_reaggregated == 0
    assert result.chunks_skipped == 0
    assert result.dirty_cells == ()

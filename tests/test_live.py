"""Tests for the event-driven live subsystem (events, engine, warehouse, hub, replay)."""

from __future__ import annotations

from dataclasses import replace
from datetime import timedelta

import pytest

from repro.datagen.scenarios import small_scenario
from repro.errors import LiveEngineError
from repro.flexoffer.model import FlexOfferState, Schedule
from repro.live import (
    ChangeCollector,
    EventLog,
    LiveAggregationEngine,
    LiveWarehouse,
    OfferAdded,
    OfferStateChanged,
    OfferUpdated,
    OfferWithdrawn,
    SubscriptionHub,
    assert_batch_equivalent,
    replay,
    scenario_event_stream,
)
from repro.monitoring.platform import MonitoringPlatform
from repro.timeseries.grid import TimeGrid
from repro.warehouse.loader import load_scenario
from repro.warehouse.query import FlexOfferFilter
from tests.conftest import make_offer

_GRID = TimeGrid()
_T0 = _GRID.to_datetime(0)


def _added(offer):
    return OfferAdded(_T0, offer)


class TestEventLog:
    def test_append_returns_sequence(self):
        log = EventLog()
        assert log.append(_added(make_offer())) == 0
        assert log.append(OfferWithdrawn(_T0, 1)) == 1
        assert len(log) == 2

    def test_subject_ids(self):
        offer = make_offer(offer_id=9)
        assert _added(offer).subject_id == 9
        assert OfferUpdated(_T0, offer).subject_id == 9
        assert OfferWithdrawn(_T0, 4).subject_id == 4
        assert OfferStateChanged(_T0, 5, FlexOfferState.ACCEPTED).subject_id == 5

    def test_replay_order_sorts_by_timestamp_then_sequence(self):
        late = OfferWithdrawn(_T0 + timedelta(hours=2), 1)
        early = _added(make_offer(offer_id=1))
        also_early = OfferStateChanged(_T0, 1, FlexOfferState.ACCEPTED)
        log = EventLog([late, early, also_early])
        assert log.replay_order() == [early, also_early, late]

    def test_since(self):
        log = EventLog([_added(make_offer(offer_id=i)) for i in (1, 2, 3)])
        assert [event.subject_id for event in log.since(1)] == [2, 3]

    def test_dict_roundtrip_all_event_types(self):
        offer = make_offer(offer_id=3)
        log = EventLog(
            [
                _added(offer),
                OfferUpdated(_T0, replace(offer, price_per_kwh=2.0)),
                OfferStateChanged(
                    _T0, 3, FlexOfferState.ASSIGNED, Schedule(41, (1.0, 2.0, 0.5))
                ),
                OfferWithdrawn(_T0, 3),
            ]
        )
        rebuilt = EventLog.from_dicts(log.to_dicts())
        assert list(rebuilt) == list(log)

    def test_malformed_payload_raises(self):
        with pytest.raises(LiveEngineError):
            EventLog.from_dicts([{"type": "added"}])
        with pytest.raises(LiveEngineError):
            EventLog.from_dicts([{"type": "unicorn", "timestamp": "2012-02-01T00:00:00"}])

    def test_subjects(self):
        log = EventLog([_added(make_offer(offer_id=1)), OfferWithdrawn(_T0, 7)])
        assert log.subjects() == {1, 7}

    def test_sub_second_timestamps_roundtrip_losslessly(self):
        instant = _T0 + timedelta(seconds=1, microseconds=500_001)
        log = EventLog([OfferWithdrawn(instant, 3)])
        rebuilt = EventLog.from_dicts(log.to_dicts())
        assert rebuilt[0] == log[0]
        assert rebuilt[0].timestamp.microsecond == 500_001


class TestEngineEvents:
    def test_add_then_commit_aggregates_cellmates(self):
        engine = LiveAggregationEngine()
        a = make_offer(offer_id=1, earliest_start=40)
        b = make_offer(offer_id=2, earliest_start=41)
        engine.apply(_added(a))
        engine.apply(_added(b))
        result = engine.commit()
        assert len(result.changed) == 1
        combined = result.changed[0]
        assert combined.is_aggregate and set(combined.constituent_ids) == {1, 2}
        assert engine.aggregated_offers() == [combined]

    def test_duplicate_add_rejected(self):
        engine = LiveAggregationEngine()
        engine.apply(_added(make_offer(offer_id=1)))
        with pytest.raises(LiveEngineError):
            engine.apply(_added(make_offer(offer_id=1)))

    def test_withdraw_unknown_rejected(self):
        with pytest.raises(LiveEngineError):
            LiveAggregationEngine().apply(OfferWithdrawn(_T0, 99))

    def test_update_migrates_cells(self):
        engine = LiveAggregationEngine()
        offer = make_offer(offer_id=1, earliest_start=40)
        engine.apply(_added(offer))
        before = engine.cell_of(1)
        engine.apply(OfferUpdated(_T0, replace(offer, earliest_start_slot=60, latest_start_slot=68)))
        after = engine.cell_of(1)
        assert before != after

    def test_state_change_keeps_cell_and_updates_offer(self):
        engine = LiveAggregationEngine()
        offer = make_offer(offer_id=1)
        engine.apply(_added(offer))
        cell = engine.cell_of(1)
        engine.apply(OfferStateChanged(_T0, 1, FlexOfferState.ACCEPTED))
        assert engine.cell_of(1) == cell
        assert engine.offer(1).state is FlexOfferState.ACCEPTED

    def test_assign_without_schedule_rejected(self):
        engine = LiveAggregationEngine()
        engine.apply(_added(make_offer(offer_id=1)))
        with pytest.raises(LiveEngineError):
            engine.apply(OfferStateChanged(_T0, 1, FlexOfferState.ASSIGNED))

    def test_assign_with_schedule(self):
        engine = LiveAggregationEngine()
        engine.apply(_added(make_offer(offer_id=1)))
        engine.apply(
            OfferStateChanged(_T0, 1, FlexOfferState.ASSIGNED, Schedule(41, (1.0, 2.0, 0.5)))
        )
        assert engine.offer(1).state is FlexOfferState.ASSIGNED
        assert engine.offer(1).schedule is not None

    def test_micro_batch_auto_commits(self):
        engine = LiveAggregationEngine(micro_batch_size=2)
        assert engine.apply(_added(make_offer(offer_id=1))) is None
        result = engine.apply(_added(make_offer(offer_id=2, earliest_start=41)))
        assert result is not None and result.events_applied == 2
        assert engine.pending_events == 0


class TestEngineCommit:
    def test_folding_removes_raw_singleton_output(self):
        engine = LiveAggregationEngine()
        a = make_offer(offer_id=1, earliest_start=40)
        engine.apply(_added(a))
        first = engine.commit()
        assert first.changed == [a] and first.removed == []
        engine.apply(_added(make_offer(offer_id=2, earliest_start=41)))
        second = engine.commit()
        assert [offer.id for offer in second.removed] == [1]
        assert len(second.changed) == 1 and second.changed[0].is_aggregate

    def test_clean_commit_is_empty(self):
        engine = LiveAggregationEngine()
        engine.apply(_added(make_offer(offer_id=1)))
        engine.commit()
        result = engine.commit()
        assert len(result) == 0 and result.dirty_cells == ()

    def test_aggregate_ids_are_stable_across_commits(self):
        engine = LiveAggregationEngine()
        offer = make_offer(offer_id=1, earliest_start=40)
        engine.apply(_added(offer))
        engine.apply(_added(make_offer(offer_id=2, earliest_start=41)))
        first_id = engine.commit().changed[0].id
        engine.apply(OfferUpdated(_T0, replace(offer, price_per_kwh=5.0)))
        result = engine.commit()
        assert result.changed[0].id == first_id

    def test_noop_state_change_reports_no_aggregate_change(self):
        # A constituent's lifecycle state does not enter the aggregate, so the
        # committed output is unchanged and subscribers are not woken.
        engine = LiveAggregationEngine()
        engine.apply(_added(make_offer(offer_id=1, earliest_start=40)))
        engine.apply(_added(make_offer(offer_id=2, earliest_start=41)))
        engine.commit()
        engine.apply(OfferStateChanged(_T0, 1, FlexOfferState.ACCEPTED))
        result = engine.commit()
        assert result.changed == [] and result.removed == []
        assert result.dirty_cells != ()

    def test_withdrawing_cell_empties_output(self):
        engine = LiveAggregationEngine()
        engine.apply(_added(make_offer(offer_id=1)))
        engine.commit()
        engine.apply(OfferWithdrawn(_T0, 1))
        result = engine.commit()
        assert [offer.id for offer in result.removed] == [1]
        assert engine.aggregated_offers() == []

    def test_passthrough_aggregate_inputs_survive_unchanged(self):
        engine = LiveAggregationEngine()
        existing = replace(make_offer(offer_id=50), is_aggregate=True, constituent_ids=(7, 8))
        engine.apply(_added(existing))
        result = engine.commit()
        assert result.changed == [existing]
        assert engine.aggregated_offers() == [existing]
        engine.apply(OfferWithdrawn(_T0, 50))
        assert engine.commit().removed == [existing]

    def test_noop_passthrough_state_change_stays_silent(self):
        engine = LiveAggregationEngine()
        existing = replace(
            make_offer(offer_id=50), is_aggregate=True, constituent_ids=(7, 8)
        ).accept()
        engine.apply(_added(existing))
        engine.commit()
        # Accepting an already-accepted passthrough changes nothing.
        engine.apply(OfferStateChanged(_T0, 50, FlexOfferState.ACCEPTED))
        result = engine.commit()
        assert result.changed == [] and result.removed == []

    def test_cell_migration_is_not_reported_as_removal(self):
        # An offer moving between cells leaves one and enters another within a
        # single commit; it is still live and must only appear as changed.
        engine = LiveAggregationEngine()
        offer = make_offer(offer_id=1, earliest_start=40)
        engine.apply(_added(offer))
        engine.commit()
        moved = replace(offer, earliest_start_slot=60, latest_start_slot=68)
        engine.apply(OfferUpdated(_T0, moved))
        result = engine.commit()
        assert result.changed == [moved] and result.removed == []

    def test_collector_keeps_migrating_offer(self):
        hub = SubscriptionHub()
        collector = ChangeCollector()
        hub.subscribe(collector)
        engine = LiveAggregationEngine(hub=hub)
        offer = make_offer(offer_id=1, earliest_start=40)
        engine.apply(_added(offer))
        engine.commit()
        engine.apply(OfferUpdated(_T0, replace(offer, earliest_start_slot=60, latest_start_slot=68)))
        engine.commit()
        assert 1 in collector.offers

    def test_allocated_ids_never_collide_with_passthrough_inputs(self):
        # Feed a batch aggregate (id 1_000_000) back in as a passthrough, then
        # form a fresh engine aggregate: the engine must skip the taken id.
        from repro.aggregation.aggregate import aggregate

        members = [
            make_offer(offer_id=1, earliest_start=40),
            make_offer(offer_id=2, earliest_start=41),
        ]
        batch_aggregate = aggregate(members).offers[0]
        engine = LiveAggregationEngine()
        engine.apply(_added(batch_aggregate))
        engine.apply(_added(make_offer(offer_id=3, earliest_start=80)))
        engine.apply(_added(make_offer(offer_id=4, earliest_start=81)))
        engine.commit()
        output_ids = [offer.id for offer in engine.aggregated_offers()]
        assert len(output_ids) == len(set(output_ids))
        assert batch_aggregate.id in output_ids

    def test_input_colliding_with_reserved_id_rejected(self):
        engine = LiveAggregationEngine()
        engine.apply(_added(make_offer(offer_id=1, earliest_start=40)))
        engine.apply(_added(make_offer(offer_id=2, earliest_start=41)))
        allocated = engine.commit().changed[0].id
        colliding = replace(make_offer(offer_id=allocated), is_aggregate=True, constituent_ids=(9,))
        with pytest.raises(LiveEngineError):
            engine.apply(_added(colliding))

    def test_constituents_and_result_provenance(self):
        engine = LiveAggregationEngine()
        engine.apply(_added(make_offer(offer_id=1, earliest_start=40)))
        engine.apply(_added(make_offer(offer_id=2, earliest_start=41)))
        combined = engine.commit().changed[0]
        assert {o.id for o in engine.constituents_of(combined.id)} == {1, 2}
        result = engine.result()
        assert result.constituents_of(combined.id) == engine.constituents_of(combined.id)

    def test_max_group_size_chunks_in_commit(self):
        from repro.aggregation.parameters import AggregationParameters

        engine = LiveAggregationEngine(AggregationParameters(max_group_size=2))
        for index in range(5):
            engine.apply(_added(make_offer(offer_id=index + 1, earliest_start=40)))
        engine.commit()
        outputs = engine.aggregated_offers()
        assert len(outputs) == 3  # chunks of 2, 2, 1
        assert_batch_equivalent(engine)


class TestSubscriptions:
    def _commit_with_two_regions(self, hub):
        engine = LiveAggregationEngine(hub=hub)
        engine.apply(_added(make_offer(offer_id=1, earliest_start=40, region="Capital")))
        engine.apply(_added(make_offer(offer_id=2, earliest_start=80, region="Zealand")))
        return engine.commit()

    def test_region_filter(self):
        hub = SubscriptionHub()
        collector = ChangeCollector()
        hub.subscribe(collector, regions=["Capital"])
        self._commit_with_two_regions(hub)
        assert {offer.region for offer in collector.offers.values()} == {"Capital"}

    def test_only_aggregates_filter(self):
        hub = SubscriptionHub()
        collector = ChangeCollector()
        hub.subscribe(collector, only_aggregates=True)
        self._commit_with_two_regions(hub)  # two singleton (raw) outputs only
        assert collector.offers == {} and collector.notifications == []

    def test_foreign_region_changes_do_not_wake_subscriber(self):
        hub = SubscriptionHub()
        collector = ChangeCollector()
        subscription = hub.subscribe(collector, regions=["Capital"])
        engine = LiveAggregationEngine(hub=hub)
        engine.apply(_added(make_offer(offer_id=1, earliest_start=40, region="Zealand")))
        engine.commit()
        assert subscription.notified == 0 and collector.notifications == []

    def test_region_exit_delivered_as_removal(self):
        # Two Capital offers aggregate; a Zealand offer then joins the same
        # grid cell, turning the aggregate's region "mixed" — the Capital
        # subscriber must drop it, not keep mirroring the stale variant.
        hub = SubscriptionHub()
        collector = ChangeCollector()
        hub.subscribe(collector, regions=["Capital"])
        engine = LiveAggregationEngine(hub=hub)
        engine.apply(_added(make_offer(offer_id=1, earliest_start=40, region="Capital")))
        engine.apply(_added(make_offer(offer_id=2, earliest_start=41, region="Capital")))
        engine.commit()
        assert len(collector.offers) == 1  # the Capital aggregate is mirrored
        engine.apply(_added(make_offer(offer_id=3, earliest_start=40, region="Zealand")))
        engine.commit()
        assert collector.offers == {}  # mixed-region aggregate was dropped

    def test_unsubscribe(self):
        hub = SubscriptionHub()
        collector = ChangeCollector()
        token = hub.subscribe(collector)
        assert hub.unsubscribe(token) is True
        assert hub.unsubscribe(token) is False
        self._commit_with_two_regions(hub)
        assert collector.notifications == []

    def test_deliver_empty_heartbeat(self):
        hub = SubscriptionHub()
        beats = []
        hub.subscribe(lambda notification: beats.append(notification), deliver_empty=True)
        engine = LiveAggregationEngine(hub=hub)
        engine.commit()  # nothing changed
        assert len(beats) == 1 and len(beats[0]) == 0

    def test_collector_tracks_removals(self):
        hub = SubscriptionHub()
        collector = ChangeCollector()
        hub.subscribe(collector)
        engine = LiveAggregationEngine(hub=hub)
        engine.apply(_added(make_offer(offer_id=1)))
        engine.commit()
        engine.apply(OfferWithdrawn(_T0, 1))
        engine.commit()
        assert collector.offers == {}

    def test_non_callable_listener_rejected(self):
        with pytest.raises(LiveEngineError):
            SubscriptionHub().subscribe("not-a-listener")


class TestMonitoringIntegration:
    def test_live_alert_feed_sees_low_flexibility(self):
        scenario = small_scenario()
        platform = MonitoringPlatform(scenario)
        hub = SubscriptionHub()
        engine = LiveAggregationEngine(hub=hub)
        feed = platform.attach_live(hub, engine)
        # One rigid offer: no time or energy flexibility at all.
        rigid = make_offer(offer_id=1, time_flexibility=0, profile=((2.0, 2.0), (1.0, 1.0)))
        engine.apply(_added(rigid))
        engine.commit()
        assert feed.current_alerts, "a low-flexibility alert should be raised"
        assert feed.alerts_for(1) == feed.current_alerts

    def test_standing_alert_recorded_once(self):
        scenario = small_scenario()
        platform = MonitoringPlatform(scenario)
        hub = SubscriptionHub()
        engine = LiveAggregationEngine(hub=hub)
        feed = platform.attach_live(hub, engine)
        engine.apply(_added(make_offer(offer_id=1, time_flexibility=0, profile=((2.0, 2.0),))))
        engine.commit()
        raised = len(feed.history)
        # An unrelated commit elsewhere must not re-log the standing alert.
        engine.apply(_added(make_offer(offer_id=2, earliest_start=80, time_flexibility=0, profile=((3.0, 3.0),))))
        engine.commit()
        assert feed.current_alerts
        standing = [alert for _, alert in feed.history]
        assert len(standing) == len(set(standing))
        assert raised >= 1

    def test_attach_live_adopts_hubless_engine(self):
        scenario = small_scenario()
        platform = MonitoringPlatform(scenario)
        hub = SubscriptionHub()
        engine = LiveAggregationEngine()  # no hub yet
        feed = platform.attach_live(hub, engine)
        assert engine.hub is hub
        engine.apply(_added(make_offer(offer_id=1, time_flexibility=0, profile=((2.0, 2.0),))))
        engine.commit()
        assert feed.current_alerts

    def test_attach_live_rejects_foreign_hub(self):
        scenario = small_scenario()
        platform = MonitoringPlatform(scenario)
        engine = LiveAggregationEngine(hub=SubscriptionHub())
        with pytest.raises(LiveEngineError):
            platform.attach_live(SubscriptionHub(), engine)


class TestLiveWarehouse:
    @pytest.fixture
    def live_setup(self):
        scenario = small_scenario()
        schema = load_scenario(scenario)
        warehouse = LiveWarehouse(schema, scenario.grid)
        return scenario, schema, warehouse

    def test_group_cells_backfilled(self, live_setup):
        _, schema, _ = live_setup
        fact = schema.table("fact_flexoffer")
        for row in fact.rows():
            if not row["is_aggregate"]:
                assert row["group_cell"]

    def test_add_and_withdraw_keep_repository_fresh(self, live_setup):
        scenario, _, warehouse = live_setup
        fresh = make_offer(offer_id=999_000, prosumer_id=scenario.prosumers[0].id)
        warehouse.apply(_added(fresh))
        assert warehouse.repository.load_by_offer_ids([999_000])[0] == fresh
        warehouse.apply(OfferWithdrawn(_T0, 999_000))
        assert warehouse.repository.load_by_offer_ids([999_000]) == []

    def test_update_replaces_rather_than_duplicates(self, live_setup):
        scenario, schema, warehouse = live_setup
        target = scenario.flex_offers[0]
        before = len(schema.table("fact_flexoffer"))
        warehouse.apply(OfferUpdated(_T0, replace(target, price_per_kwh=9.99)))
        assert len(schema.table("fact_flexoffer")) == before
        assert warehouse.repository.load_by_offer_ids([target.id])[0].price_per_kwh == 9.99

    def test_state_change_event(self, live_setup):
        scenario, _, warehouse = live_setup
        target = next(o for o in scenario.flex_offers if o.state is FlexOfferState.ACCEPTED)
        warehouse.apply(OfferStateChanged(_T0, target.id, FlexOfferState.ACCEPTED))
        assert (
            warehouse.repository.load_by_offer_ids([target.id])[0].state
            is FlexOfferState.ACCEPTED
        )

    def test_unknown_offer_events_rejected(self, live_setup):
        _, _, warehouse = live_setup
        with pytest.raises(LiveEngineError):
            warehouse.apply(OfferWithdrawn(_T0, 123_456_789))
        with pytest.raises(LiveEngineError):
            warehouse.apply(OfferStateChanged(_T0, 123_456_789, FlexOfferState.ACCEPTED))

    def test_commit_mirror_upserts_and_retires_aggregates(self, live_setup):
        scenario, _, warehouse = live_setup
        engine = LiveAggregationEngine()
        a = make_offer(offer_id=999_001, earliest_start=40)
        b = make_offer(offer_id=999_002, earliest_start=41)
        warehouse.apply(_added(a)), engine.apply(_added(a))
        warehouse.apply(_added(b)), engine.apply(_added(b))
        commit = engine.commit()
        warehouse.apply_commit(commit)
        aggregates = warehouse.repository.load_aggregates()
        assert [o.id for o in aggregates] == [commit.changed[0].id]
        # Raw-offer queries must NOT see the derived aggregate (no double count).
        assert all(not o.is_aggregate for o in warehouse.repository.load().offers)
        # Withdrawing one constituent dissolves the aggregate.
        warehouse.apply(OfferWithdrawn(_T0, 999_002)), engine.apply(OfferWithdrawn(_T0, 999_002))
        warehouse.apply_commit(engine.commit())
        assert warehouse.repository.load_aggregates() == []

    def test_streamed_offers_maintain_type_dimensions(self):
        # Seed the schema with no offers at all: type dimensions start empty
        # and must be filled by the event write path.
        scenario = small_scenario()
        schema = load_scenario(scenario.replace_offers([]))
        warehouse = LiveWarehouse(schema, scenario.grid)
        assert len(schema.table("dim_energy_type")) == 0
        for offer in scenario.flex_offers:
            warehouse.apply(_added(offer))
        expected_energy = {o.energy_type for o in scenario.flex_offers if o.energy_type}
        expected_appliances = {o.appliance_type for o in scenario.flex_offers if o.appliance_type}
        assert set(schema.table("dim_energy_type").column("energy_type")) == expected_energy
        assert set(schema.table("dim_appliance").column("appliance_type")) == expected_appliances

    def test_streamed_offer_from_unseen_district_stays_queryable(self, live_setup):
        scenario, schema, warehouse = live_setup
        stranger = make_offer(
            offer_id=999_100,
            district="Terra Incognita",
            city="Atlantis",
            region="Lost Region",
        )
        warehouse.apply(_added(stranger))
        result = warehouse.repository.load(FlexOfferFilter(districts=("Terra Incognita",)))
        assert [o.id for o in result.offers] == [999_100]
        assert "Terra Incognita" in {
            row["district"] for row in schema.table("dim_geography").rows()
        }

    def test_offers_in_cell_drilldown(self, live_setup):
        scenario, _, warehouse = live_setup
        engine = LiveAggregationEngine()
        for offer in scenario.flex_offers:
            engine.apply(_added(offer))
        commit = engine.commit()
        cell = commit.dirty_cells[0]
        from_warehouse = {o.id for o in warehouse.offers_in_cell(cell)}
        from_engine = {i for i in (o.id for o in scenario.flex_offers) if engine.cell_of(i) == cell}
        assert from_warehouse == from_engine and from_warehouse

    def test_prosumer_query_uses_index(self, live_setup):
        scenario, _, warehouse = live_setup
        prosumer = scenario.prosumers[0]
        result = warehouse.repository.load(FlexOfferFilter(prosumer_ids=(prosumer.id,)))
        assert result.scanned_rows < len(scenario.flex_offers)
        assert len(result) == len(scenario.offers_of_prosumer(prosumer.id))


class TestReplay:
    def test_stream_replays_to_exact_scenario_state(self):
        scenario = small_scenario()
        engine = LiveAggregationEngine(micro_batch_size=32)
        report = replay(scenario_event_stream(scenario), engine)
        assert report.final_offers == len(scenario.flex_offers)
        expected = sorted(scenario.flex_offers, key=lambda offer: offer.id)
        assert engine.offers() == expected
        assert_batch_equivalent(engine)

    def test_withdrawals_shrink_population(self):
        scenario = small_scenario()
        log = scenario_event_stream(scenario, withdraw_fraction=1.0)
        engine = LiveAggregationEngine()
        report = replay(log, engine)
        assert report.final_offers == 0
        assert engine.aggregated_offers() == []

    def test_updates_keep_equivalence_and_feasibility(self):
        scenario = small_scenario()
        log = scenario_event_stream(scenario, update_fraction=1.0, seed=11)
        engine = LiveAggregationEngine(micro_batch_size=16)
        replay(log, engine)
        assert_batch_equivalent(engine)

    def test_replay_with_warehouse_matches_engine(self):
        scenario = small_scenario()
        schema = load_scenario(scenario.replace_offers([]))
        warehouse = LiveWarehouse(schema, scenario.grid)
        engine = LiveAggregationEngine(micro_batch_size=16)
        log = scenario_event_stream(scenario, update_fraction=0.2, withdraw_fraction=0.1, seed=3)
        replay(log, engine, warehouse=warehouse)
        # fact_flexoffer holds exactly the raw offers; aggregates live apart.
        stored = sorted(warehouse.repository.load().offers, key=lambda offer: offer.id)
        assert stored == [o for o in engine.offers() if not o.is_aggregate]
        assert warehouse.aggregate_count() == sum(
            1 for o in engine.aggregated_offers() if o.is_aggregate
        )
        # The repository's raw energy total matches the live population — the
        # derived aggregates do not inflate it.
        assert sum(o.max_total_energy for o in stored) == pytest.approx(
            sum(o.max_total_energy for o in engine.offers() if not o.is_aggregate)
        )

    def test_rejected_event_does_not_diverge_warehouse(self):
        scenario = small_scenario()
        schema = load_scenario(scenario.replace_offers([]))
        warehouse = LiveWarehouse(schema, scenario.grid)
        engine = LiveAggregationEngine()
        offer = make_offer(offer_id=1)
        with pytest.raises(LiveEngineError):
            # Duplicate add: the engine (applied first) rejects it before the
            # warehouse sees either event.
            replay([_added(offer), _added(offer)], engine, warehouse=warehouse)
        assert warehouse.offer_count() == len([o for o in engine.offers()])

    def test_report_describe_mentions_latency(self):
        scenario = small_scenario()
        report = replay(scenario_event_stream(scenario), LiveAggregationEngine(micro_batch_size=8))
        text = report.describe()
        assert "commit latency" in text and str(report.events) in text

"""Tests for the synthetic geography and grid topology."""

from __future__ import annotations

import pytest

from repro.datagen.geography import generate_geography
from repro.datagen.grid import NodeKind, generate_grid
from repro.errors import DataGenerationError


class TestGeography:
    def test_default_geography_has_five_regions(self):
        geography = generate_geography()
        assert len(geography.regions) == 5

    def test_every_region_has_cities(self):
        geography = generate_geography()
        assert all(region.cities for region in geography.regions)

    def test_districts_per_city_respected(self):
        geography = generate_geography(districts_per_city=2)
        assert all(len(city.districts) == 2 for city in geography.all_cities())

    def test_invalid_districts_per_city_rejected(self):
        with pytest.raises(DataGenerationError):
            generate_geography(districts_per_city=0)
        with pytest.raises(DataGenerationError):
            generate_geography(districts_per_city=99)

    def test_district_names_are_unique(self):
        geography = generate_geography()
        names = [district.name for district in geography.all_districts()]
        assert len(names) == len(set(names))

    def test_region_of_city(self):
        geography = generate_geography()
        assert geography.region_of_city("Copenhagen") == "Capital"
        assert geography.region_of_city("Aalborg") == "North Jutland"

    def test_unknown_city_raises(self):
        with pytest.raises(DataGenerationError):
            generate_geography().region_of_city("Atlantis")

    def test_city_lookup(self):
        geography = generate_geography()
        assert geography.city("Aarhus").region == "Central Jutland"

    def test_deterministic_given_seed(self):
        first = generate_geography(seed=3)
        second = generate_geography(seed=3)
        assert [d.latitude for d in first.all_districts()] == [d.latitude for d in second.all_districts()]

    def test_districts_reference_parent_city(self):
        geography = generate_geography()
        for city in geography.all_cities():
            assert all(district.city == city.name for district in city.districts)


class TestGridTopology:
    @pytest.fixture(scope="class")
    def topology(self):
        return generate_grid(generate_geography())

    def test_one_transmission_node_per_region(self, topology):
        assert len(topology.nodes_of_kind(NodeKind.TRANSMISSION)) == 5

    def test_one_distribution_node_per_city(self, topology):
        assert len(topology.nodes_of_kind(NodeKind.DISTRIBUTION)) == 15

    def test_one_feeder_per_district(self, topology):
        geography = generate_geography()
        assert len(topology.nodes_of_kind(NodeKind.FEEDER)) == len(geography.all_districts())

    def test_graph_is_connected(self, topology):
        import networkx as nx

        assert nx.is_connected(topology.graph)

    def test_feeder_for_district(self, topology):
        geography = generate_geography()
        district = geography.all_districts()[0]
        feeder = topology.feeder_for_district(district.name)
        assert feeder.kind is NodeKind.FEEDER
        assert feeder.district == district.name

    def test_unknown_district_raises(self, topology):
        with pytest.raises(DataGenerationError):
            topology.feeder_for_district("Nowhere East")

    def test_upstream_path_reaches_transmission(self, topology):
        feeder = topology.nodes_of_kind(NodeKind.FEEDER)[0]
        root = f"TX {feeder.region}"
        path = topology.upstream_path(feeder.name, root)
        assert path[0] == feeder.name
        assert path[-1] == root
        assert len(path) == 3  # feeder -> distribution -> transmission

    def test_upstream_path_unknown_node_raises(self, topology):
        with pytest.raises(DataGenerationError):
            topology.upstream_path("missing", "TX Capital")

    def test_line_voltages(self, topology):
        voltages = {line.voltage_kv for line in topology.lines}
        assert voltages == {400.0, 150.0, 10.0}

    def test_feeder_lines_connect_to_city_substation(self, topology):
        for line in topology.lines:
            if line.voltage_kv == 10.0:
                assert line.source.startswith("DS ")
                assert line.target.startswith("F ")

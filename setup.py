from pathlib import Path

from setuptools import find_packages, setup

_README = Path(__file__).parent / "README.md"

setup(
    name="repro-flexoffer-analysis",
    version="0.2.0",
    description=(
        "Reproduction of 'Visual Analysis of Flex-Offers in Smart Grids' "
        "(EDBT/ICDT 2013), grown into an event-driven flex-offer engine"
    ),
    long_description=_README.read_text(encoding="utf-8") if _README.exists() else "",
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy", "networkx"],
    extras_require={
        "test": ["pytest", "hypothesis", "pytest-benchmark", "pytest-cov"],
    },
    entry_points={
        "console_scripts": [
            "repro = repro.app.cli:main",
            "flexviz = repro.app.cli:main",
        ]
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "License :: OSI Approved :: MIT License",
        "Topic :: Scientific/Engineering",
    ],
)

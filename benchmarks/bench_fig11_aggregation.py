"""FIG-11 / CLAIM-3 bench: the aggregation tools and their parameter sweep.

Figure 11 shows the aggregation panel; the accompanying claim is that
aggregation "reduces the count of flex-offers shown on a screen" with
interactively tunable parameters.  The bench times aggregation of ~1500
offers, sweeps the EST tolerance (the interactive tuning) and reports the
reduction-vs-flexibility-loss trade-off, plus the disaggregation round trip.
"""

from __future__ import annotations

from benchmarks.conftest import record
from repro.aggregation.aggregate import aggregate
from repro.aggregation.disaggregate import disaggregate
from repro.aggregation.metrics import evaluate
from repro.aggregation.parameters import AggregationParameters
from repro.views.aggregation_panel import AggregationPanel


def test_fig11_aggregation_reduction(benchmark, large_offer_scenario):
    offers = large_offer_scenario.flex_offers
    parameters = AggregationParameters(est_tolerance_slots=8, time_flexibility_tolerance_slots=8)

    result = benchmark(lambda: aggregate(offers, parameters))
    metrics = evaluate(offers, result)
    record(
        benchmark,
        {
            "offers_before": metrics.original_count,
            "offers_after": metrics.aggregated_count,
            "reduction_ratio": round(metrics.reduction_ratio, 2),
            "time_flexibility_loss_pct": round(100 * metrics.time_flexibility_loss_ratio, 1),
            "energy_preserved": round(metrics.aggregated_energy / metrics.original_energy, 6),
            "paper_claim": "aggregation reduces the count of flex-offers shown on screen",
        },
        "Figure 11: aggregation reduction",
    )
    assert metrics.reduction_ratio > 1.0
    assert abs(metrics.aggregated_energy - metrics.original_energy) < 1e-6 * metrics.original_energy


def test_fig11_parameter_sweep(benchmark, large_offer_scenario):
    """CLAIM-3: the interactive tuning — larger tolerances aggregate more but lose flexibility."""
    panel = AggregationPanel(large_offer_scenario.flex_offers, large_offer_scenario.grid)
    tolerances = [1, 2, 4, 8, 16, 32]

    points = benchmark.pedantic(
        lambda: panel.sweep(est_tolerances=tolerances, time_flexibility_tolerances=[4]),
        rounds=1,
        iterations=1,
    )
    table = {
        f"est_tol_{point.parameters.est_tolerance_slots:02d}": (
            f"{point.metrics.aggregated_count} offers, x{point.metrics.reduction_ratio:.1f}, "
            f"flex loss {100 * point.metrics.time_flexibility_loss_ratio:.0f}%"
        )
        for point in points
    }
    record(benchmark, {"offers_before": len(large_offer_scenario.flex_offers), **table}, "Figure 11: tolerance sweep")
    counts = [point.metrics.aggregated_count for point in points]
    assert counts == sorted(counts, reverse=True)


def test_fig11_disaggregation_roundtrip(benchmark, paper_scenario):
    """Disaggregation of a scheduled aggregate back to feasible individual assignments."""
    result = aggregate(
        paper_scenario.flex_offers,
        AggregationParameters(est_tolerance_slots=8, time_flexibility_tolerance_slots=8),
    )
    scheduled = [offer.with_default_schedule() for offer in result.aggregates]

    def roundtrip():
        assignments = []
        for offer in scheduled:
            assignments.extend(disaggregate(offer, result.constituents_of(offer.id)))
        return assignments

    assignments = benchmark(roundtrip)
    record(
        benchmark,
        {
            "aggregates_scheduled": len(scheduled),
            "individual_assignments": len(assignments),
            "all_feasible": all(a.schedule is not None for a in assignments),
        },
        "Figure 11: disaggregation round trip",
    )
    assert len(assignments) == sum(len(offer.constituent_ids) for offer in scheduled)

"""FIG-7 bench: the flex-offer loading workflow.

Figure 7 shows the loading tab: connect to the MIRABEL DW, choose a legal
entity and an absolute time interval, and read the matching flex-offers into
a new view tab.  The bench times (a) loading a whole scenario into the
warehouse substitute and (b) the filtered read for one entity and a 6-hour
window — the operation the tab performs.
"""

from __future__ import annotations

from datetime import timedelta

from benchmarks.conftest import record
from repro.views.loading import LoadingWorkflow
from repro.warehouse.loader import load_scenario
from repro.warehouse.query import FlexOfferFilter, FlexOfferRepository


def test_fig07_warehouse_load(benchmark, paper_scenario):
    """ETL: scenario -> star schema."""
    schema = benchmark.pedantic(lambda: load_scenario(paper_scenario), rounds=3, iterations=1)
    counts = schema.row_counts()
    record(
        benchmark,
        {
            "fact_flexoffer_rows": counts["fact_flexoffer"],
            "fact_flexoffer_slice_rows": counts["fact_flexoffer_slice"],
            "fact_timeseries_rows": counts["fact_timeseries"],
            "dimension_rows": sum(counts[name] for name in schema.dimension_names),
        },
        "Figure 7: warehouse load",
    )
    assert counts["fact_flexoffer"] == len(paper_scenario.flex_offers)


def test_fig07_entity_interval_read(benchmark, paper_scenario):
    """The loading tab's read: one legal entity, one absolute time interval."""
    schema = load_scenario(paper_scenario)
    repository = FlexOfferRepository(schema, paper_scenario.grid)
    workflow = LoadingWorkflow(repository, paper_scenario.grid)
    entity = next(
        (e["entity_id"] for e in workflow.available_entities() if paper_scenario.offers_of_prosumer(e["entity_id"])),
        workflow.available_entities()[0]["entity_id"],
    )
    start = paper_scenario.grid.origin
    end = start + timedelta(hours=6)

    dataset = benchmark(lambda: workflow.load_entity(entity, start, end))
    record(
        benchmark,
        {
            "entity_id": entity,
            "interval": f"{start} .. {end}",
            "rows_scanned": dataset.scanned_rows,
            "offers_loaded": len(dataset),
            "available_entities": len(workflow.available_entities()),
        },
        "Figure 7: entity + interval read",
    )
    # The prosumer_id hash index narrows the scan to the entity's own rows.
    assert dataset.scanned_rows == len(paper_scenario.offers_of_prosumer(entity))
    assert dataset.scanned_rows < len(paper_scenario.flex_offers)


def test_fig07_attribute_filter_read(benchmark, paper_scenario):
    """The Section-3 style attribute filter: region + state, through the same read path."""
    schema = load_scenario(paper_scenario)
    repository = FlexOfferRepository(schema, paper_scenario.grid)
    query = FlexOfferFilter(regions=("Capital", "Zealand"), states=("assigned",))

    result = benchmark(lambda: repository.load(query))
    record(
        benchmark,
        {"filter": query.describe(), "offers_loaded": len(result)},
        "Figure 7: attribute filter read",
    )
    assert all(offer.region in ("Capital", "Zealand") for offer in result.offers)

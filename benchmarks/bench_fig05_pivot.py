"""FIG-5 bench: the pivot view with the prosumer hierarchy and the MDX window.

Figure 5 shows swimlanes per prosumer-hierarchy member over time plus a
manual MDX query window.  The bench times the pivot query + view rendering,
reports the per-member row totals, and checks that the drill-down path of the
prosumer hierarchy (All prosumers -> role -> prosumer type) works.
"""

from __future__ import annotations

from benchmarks.conftest import record
from repro.views.pivot_view import PivotView, PivotViewOptions


def test_fig05_pivot_view(benchmark, paper_scenario):
    def build():
        view = PivotView(
            paper_scenario.flex_offers,
            paper_scenario.grid,
            options=PivotViewOptions(
                row_dimension="Prosumer",
                row_level="prosumer_type",
                column_dimension="Time",
                column_level="hour",
                measure="scheduled_energy",
            ),
        )
        return view, view.pivot_table(), view.to_svg()

    view, table, svg = benchmark.pedantic(build, rounds=5, iterations=1)
    row_totals = dict(zip(table.row_members, (round(v, 1) for v in table.row_totals("scheduled_energy"))))
    record(
        benchmark,
        {
            **{f"scheduled_energy_{member}": value for member, value in row_totals.items()},
            "time_columns": len(table.column_members),
            "svg_bytes": len(svg),
            "paper_claim": "swimlanes per prosumer-hierarchy member with an MDX query window",
        },
        "Figure 5: pivot view",
    )
    assert table.row_members
    assert "MDX query window" in svg


def test_fig05_mdx_query_window(benchmark, paper_scenario):
    """The manual MDX query of the Figure 5 window, timed end to end."""
    view = PivotView(paper_scenario.flex_offers, paper_scenario.grid)
    query = (
        "SELECT {[Measures].[flex_offer_count], [Measures].[scheduled_energy]} ON COLUMNS, "
        "{[Prosumer].[prosumer_type].Members} ON ROWS FROM [FlexOffers] "
        "WHERE ([State].[state].[assigned])"
    )
    table = benchmark(lambda: view.run_mdx(query))
    record(
        benchmark,
        {
            "rows": list(map(str, table.row_members)),
            "columns": list(map(str, table.column_members)),
            "assigned_offer_total": int(sum(row[0] for row in table.values["value"])),
        },
        "Figure 5: MDX query",
    )
    assert table.column_members == ["flex_offer_count", "scheduled_energy"]


def test_fig05_drilldown_hierarchy(benchmark, paper_scenario):
    """Drill the prosumer hierarchy all the way down, re-aggregating at each level."""
    def drill():
        view = PivotView(
            paper_scenario.flex_offers,
            paper_scenario.grid,
            options=PivotViewOptions(row_dimension="Prosumer", row_level="all"),
        )
        levels = [view.options.row_level]
        while True:
            deeper = view.drill_down()
            if deeper is view:
                break
            view = deeper
            levels.append(view.options.row_level)
            view.pivot_table()
        return levels

    levels = benchmark.pedantic(drill, rounds=3, iterations=1)
    record(benchmark, {"drill_path": " > ".join(levels)}, "Figure 5: drill-down path")
    assert levels == ["all", "role", "prosumer_type"]

"""FIG-9 bench: the profile view (stacked time x energy subspaces).

Figure 9 shows the detailed profile view with per-slice min/max energy bars,
synchronised ordinate scales and the scheduled amounts.  The bench times the
view on the set size the paper recommends it for (hundreds of offers) and
verifies the synchronised-scale property.
"""

from __future__ import annotations

from benchmarks.conftest import record
from repro.render.scene import Rect
from repro.views.profile_view import ProfileView


def test_fig09_profile_view_render(benchmark, paper_scenario):
    offers = paper_scenario.flex_offers

    def build():
        view = ProfileView(offers, paper_scenario.grid)
        return view, view.to_svg()

    view, svg = benchmark.pedantic(build, rounds=3, iterations=1)
    record(
        benchmark,
        {
            "offer_count": len(offers),
            "shared_energy_scale_kwh_per_slot": round(view.max_slice_energy(), 2),
            "scene_nodes": view.scene().count_nodes(),
            "svg_bytes": len(svg),
            "paper_claim": "per-slice min/max energy bounds with synchronised ordinate scales",
        },
        "Figure 9: profile view",
    )
    assert view.max_slice_energy() > 0


def test_fig09_synchronised_scales(benchmark, paper_scenario):
    """All lanes must share one energy scale so bars are comparable across offers."""
    offers = paper_scenario.flex_offers[:100]
    view = ProfileView(offers, paper_scenario.grid)

    def tallest_bar_energy():
        scene = view.scene()
        # The tallest min-energy bar must correspond to the largest per-slot minimum.
        bars = [node for node in scene.walk() if isinstance(node, Rect) and node.css_class == "energy-min"]
        return max(bar.height for bar in bars)

    tallest = benchmark.pedantic(tallest_bar_energy, rounds=3, iterations=1)
    largest_min = max(p.min_energy / p.duration_slots for o in offers for p in o.profile)
    record(
        benchmark,
        {
            "offers": len(offers),
            "tallest_min_bar_px": round(tallest, 1),
            "largest_per_slot_min_kwh": round(largest_min, 2),
            "shared_scale_max_kwh": round(view.max_slice_energy(), 2),
        },
        "Figure 9: synchronised scales",
    )
    assert tallest > 0

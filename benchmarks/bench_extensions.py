"""Extension benches: the paper's announced enhancements.

Two extensions the paper names explicitly are implemented and benchmarked
here: the **integrated pivot view** ("the basic and the detailed views will be
integrated into the pivot view, where the flex-offer aggregation will be
applied to produce inputs for the flex-offer visualization on swimlanes") and
the **monitoring platform** ("alerts about expected shortages or
over-capacities and an option to drill down data to find out a reason behind
this").
"""

from __future__ import annotations

from benchmarks.conftest import record
from repro.monitoring.platform import MonitoringPlatform
from repro.views.integrated_pivot import IntegratedPivotOptions, IntegratedPivotView


def test_ext_integrated_pivot_view(benchmark, paper_scenario):
    """The announced pivot enhancement: aggregated basic-view swimlanes."""
    def build():
        view = IntegratedPivotView(paper_scenario.flex_offers, paper_scenario.grid)
        return view, view.to_svg()

    view, svg = benchmark.pedantic(build, rounds=3, iterations=1)
    lanes = view.lane_offers()
    raw = IntegratedPivotView(
        paper_scenario.flex_offers,
        paper_scenario.grid,
        options=IntegratedPivotOptions(aggregate_lanes=False),
    ).lane_offers()
    record(
        benchmark,
        {
            "swimlanes": len(lanes),
            "objects_per_lane_aggregated": {member: len(offers) for member, offers in sorted(lanes.items())},
            "objects_per_lane_raw": {member: len(offers) for member, offers in sorted(raw.items())},
            "svg_bytes": len(svg),
            "paper_claim": "basic view integrated into the pivot view via per-lane aggregation",
        },
        "Extension: integrated pivot view",
    )
    assert sum(len(offers) for offers in lanes.values()) <= sum(len(offers) for offers in raw.values())


def test_ext_monitoring_scan(benchmark, paper_scenario):
    """The future-work alerting platform: scan + drill-down."""
    platform = MonitoringPlatform(paper_scenario)

    report = benchmark(lambda: platform.scan(per_region=True))
    worst = report.worst()
    drill_down_offers = len(platform.offers_for(worst)) if worst else 0
    record(
        benchmark,
        {
            "alerts": len(report),
            "critical": len(report.by_severity(report.alerts[0].severity.__class__.CRITICAL)) if report.alerts else 0,
            "worst_alert": worst.describe() if worst else "none",
            "drill_down_offers": drill_down_offers,
            "paper_claim": "alerts about expected shortages/over-capacities with drill-down",
        },
        "Extension: monitoring scan",
    )
    assert len(report) >= 1

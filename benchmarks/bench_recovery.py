"""RECOVERY bench: snapshot + log tail beats cold replay; deletes stay O(1).

Two claims of the :mod:`repro.store` durability subsystem are gated here:

* **Restore speedup** — rebuilding a session from the latest checkpoint and
  replaying only the log tail must be ≥5x faster than a cold replay of the
  whole event log when 10% of the stream lies beyond the checkpoint.  The
  restore path parses the snapshot (JSONL offers + CSV warehouse) instead of
  re-running ~90% of the event stream through the engine and warehouse.

* **Delete throughput** — `warehouse.Table` deletes are tombstoned and
  compacted periodically, so per-delete cost is amortized O(1).  The bench
  deletes every row of a small and a 4x larger indexed table; the throughput
  ratio (large/small) must stay near 1 instead of degrading linearly with
  table size as the old full-rewrite deletes did.

Standalone mode (CI): ``python -m benchmarks.bench_recovery --quick --json
BENCH_recovery.json`` writes the machine-readable summary the trajectory gate
(``benchmarks/check_bench_trajectory.py``) consumes alongside the live-engine
sweep.
"""

from __future__ import annotations

import statistics
import tempfile
import time

from benchmarks.conftest import record
from repro.live.replay import scenario_event_stream
from repro.session import FlexSession
from repro.store import RecoveryManager
from repro.warehouse.table import Table

#: Fraction of the stream left beyond the checkpoint (the acceptance point).
TAIL_FRACTION = 0.1

#: Micro-batch size both the cold replay and the tail replay commit with.
BATCH_SIZE = 64

#: Rounds of offer churn the synthetic service lives through (see below).
CHURN_ROUNDS = 5


def _event_stream(scenario, churn_rounds: int = CHURN_ROUNDS):
    """A long-running service's event log: several rounds of offer churn.

    Flex-offers are short-lived (day-ahead), the service is not: each round
    replays the scenario's lifecycle stream and then withdraws every offer —
    prosumers re-offer their flexibility the next day — except the last
    round, which survives.  The log therefore holds several times more events
    than surviving offers, which is exactly the regime the snapshot+tail
    restore exists for (and the worst case for replaying from sequence 0).
    The list is in consumption order; replaying it ends in the last round's
    population.
    """
    events = []
    for round_index in range(churn_rounds):
        last = round_index == churn_rounds - 1
        log = scenario_event_stream(
            scenario,
            update_fraction=0.1 if last else 0.0,
            withdraw_fraction=0.05 if last else 0.0,
            seed=7 + round_index,
        )
        ordered = log.replay_order()
        events.extend(ordered)
        if not last:
            from repro.live.events import OfferWithdrawn

            cutoff = max(event.timestamp for event in ordered) + scenario.grid.resolution
            events.extend(
                OfferWithdrawn(cutoff, offer.id) for offer in scenario.flex_offers
            )
    return events


def recovery_summary(scenario, rounds: int = 3) -> dict:
    """The restore-vs-cold-replay comparison as a JSON-ready row.

    Both contenders start from durable state only, as a crash recovery does:

    * *cold replay* reads the whole segmented event log back from disk and
      replays it through a fresh session (sequence 0 onward);
    * *restore* loads the checkpoint (offers + warehouse CSV) and replays
      only the log tail past the checkpoint's offset.
    """
    ordered = _event_stream(scenario)
    cut = len(ordered) - int(len(ordered) * TAIL_FRACTION)
    with tempfile.TemporaryDirectory(prefix="bench-recovery-") as directory:
        writer = FlexSession(
            scenario, engine="live", micro_batch_size=BATCH_SIZE, live_preload=False
        )
        manager = RecoveryManager(directory)
        manager.record(ordered)
        writer.replay(ordered[:cut])
        manager.checkpoint(writer)
        writer.close()
        cold_timings = []
        for _ in range(rounds):
            started = time.perf_counter()
            session = FlexSession(
                scenario, engine="live", micro_batch_size=BATCH_SIZE, live_preload=False
            )
            session.replay(list(RecoveryManager(directory).log.events()))
            cold_timings.append(time.perf_counter() - started)
            session.close()
        restore_timings = []
        for _ in range(rounds):
            started = time.perf_counter()
            session = RecoveryManager(directory).restore(
                scenario=scenario, micro_batch_size=BATCH_SIZE
            )
            restore_timings.append(time.perf_counter() - started)
            session.close()
    cold = statistics.median(cold_timings)
    restore = statistics.median(restore_timings)
    return {
        "events": len(ordered),
        "tail_fraction": TAIL_FRACTION,
        "tail_events": len(ordered) - cut,
        "cold_replay_ms": round(cold * 1000, 3),
        "restore_ms": round(restore * 1000, 3),
        "speedup": round(cold / restore, 1),
    }


def snapshot_format_summary(scenario, rounds: int = 5) -> dict:
    """Binary columnar vs CSV checkpoint restore, same state, same process.

    One session's engine state + warehouse is checkpointed twice — once in
    each warehouse format — and both checkpoints are loaded back ``rounds``
    times.  The binary format memmaps its typed column blocks instead of
    parsing text, so ``speedup = csv_load_ms / columnar_load_ms`` must stay
    above 1 (gated, with the committed baseline as the reference).
    """
    from repro.store import SnapshotStore, capture_engine_state

    ordered = _event_stream(scenario, churn_rounds=2)
    writer = FlexSession(
        scenario, engine="live", micro_batch_size=BATCH_SIZE, live_preload=False
    )
    writer.replay(ordered)
    backend = writer.engine
    backend.refresh()
    state = capture_engine_state(backend.engine)
    with tempfile.TemporaryDirectory(prefix="bench-format-") as directory:
        from pathlib import Path

        stores = {
            "csv": SnapshotStore(Path(directory) / "csv", warehouse_format="csv"),
            "columnar": SnapshotStore(Path(directory) / "bin", warehouse_format="columnar"),
        }
        save_ms = {}
        for name, store in stores.items():
            started = time.perf_counter()
            store.save(state, log_offset=len(ordered), schema=backend.schema)
            save_ms[name] = round((time.perf_counter() - started) * 1000, 3)
        load_timings: dict[str, list[float]] = {name: [] for name in stores}
        for _ in range(rounds):
            for name, store in stores.items():
                started = time.perf_counter()
                checkpoint = store.load()
                load_timings[name].append(time.perf_counter() - started)
                assert checkpoint.schema is not None
        fact_rows = len(backend.schema.table("fact_flexoffer"))
    writer.close()
    csv_load = statistics.median(load_timings["csv"])
    columnar_load = statistics.median(load_timings["columnar"])
    return {
        "fact_rows": fact_rows,
        "csv_save_ms": save_ms["csv"],
        "columnar_save_ms": save_ms["columnar"],
        "csv_load_ms": round(csv_load * 1000, 3),
        "columnar_load_ms": round(columnar_load * 1000, 3),
        "load_speedup": round(csv_load / columnar_load, 2),
    }


def store_stage_breakdown(scenario) -> dict:
    """Per-stage store latency rows from one instrumented checkpoint cycle.

    Runs record -> checkpoint -> compact -> restore once with :mod:`repro.obs`
    enabled and returns the ``store.*`` histograms as JSON-ready rows, so the
    trajectory gate can require the durability stages to stay instrumented.
    """
    from benchmarks.conftest import stage_rows
    from repro import obs

    ordered = _event_stream(scenario, churn_rounds=2)
    obs.reset()
    obs.enable()
    try:
        with tempfile.TemporaryDirectory(prefix="bench-obs-store-") as directory:
            writer = FlexSession(
                scenario, engine="live", micro_batch_size=BATCH_SIZE, live_preload=False
            )
            manager = RecoveryManager(directory)
            manager.record(ordered)
            writer.replay(ordered)
            manager.checkpoint(writer)
            manager.compact()
            writer.close()
            session = manager.restore(scenario=scenario, micro_batch_size=BATCH_SIZE)
            session.close()
    finally:
        obs.disable()
    rows = {
        name: row
        for name, row in stage_rows(obs.get_registry()).items()
        if name.startswith("repro.store.")
    }
    obs.reset()
    return rows


def _delete_throughput(row_count: int) -> float:
    """Deletes per second over a fully indexed table of ``row_count`` rows."""
    table = Table("facts", ["offer_id", "state", "payload"])
    table.create_index("offer_id")
    table.extend(
        {"offer_id": i, "state": "offered", "payload": f"payload-{i}"}
        for i in range(row_count)
    )
    table.lookup("offer_id", 0)  # force the lazy index build outside the timing
    started = time.perf_counter()
    for offer_id in range(row_count):
        table.delete_where("offer_id", offer_id)
    elapsed = time.perf_counter() - started
    assert len(table) == 0
    return row_count / elapsed


def delete_summary(small_rows: int, rounds: int = 3) -> dict:
    """Delete throughput at two table sizes; flat scaling is the claim."""
    large_rows = small_rows * 4
    small = statistics.median(_delete_throughput(small_rows) for _ in range(rounds))
    large = statistics.median(_delete_throughput(large_rows) for _ in range(rounds))
    return {
        "small_rows": small_rows,
        "large_rows": large_rows,
        "small_deletes_per_s": round(small),
        "large_deletes_per_s": round(large),
        "scaling": round(large / small, 2),
    }


def test_snapshot_restore_beats_cold_replay(benchmark, paper_scenario):
    """Acceptance: snapshot+tail restore >=5x faster than cold replay @ 10% tail."""
    summary = benchmark.pedantic(
        lambda: recovery_summary(paper_scenario), rounds=1, iterations=1
    )
    record(
        benchmark,
        {
            **summary,
            "claim": "restore from snapshot + log tail beats replaying from sequence 0",
        },
        "RECOVERY: snapshot+tail restore vs cold replay",
    )
    assert summary["speedup"] >= 5.0


def test_delete_throughput_does_not_degrade_with_table_size(benchmark):
    """Acceptance: tombstoned deletes scale flat, not linearly with table size."""
    summary = benchmark.pedantic(lambda: delete_summary(2000), rounds=1, iterations=1)
    record(
        benchmark,
        {
            **summary,
            "claim": "tombstone + periodic compaction makes deletes amortized O(1)",
        },
        "RECOVERY: warehouse delete throughput vs table size",
    )
    # The old full-rewrite deletes degraded ~linearly (scaling ~0.25 at 4x);
    # amortized-O(1) deletes stay near parity.
    assert summary["scaling"] >= 0.5


# ----------------------------------------------------------------------
# Standalone smoke mode (CI: `python -m benchmarks.bench_recovery --quick`)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    """Run the recovery comparison without the pytest harness.

    ``--quick`` shrinks the scenario and delete tables so the run finishes in
    a few seconds.  CI gates on the *relative* ratios inside the ``--json``
    summary (see ``check_bench_trajectory.py``); the absolute wall clock is
    informational.
    """
    import argparse
    import json

    from repro.datagen.scenarios import ScenarioConfig, generate_scenario

    parser = argparse.ArgumentParser(description="recovery bench (standalone)")
    parser.add_argument("--quick", action="store_true", help="small scenario, few rounds")
    parser.add_argument("--prosumers", type=int, default=800)
    parser.add_argument("--seed", type=int, default=43)
    parser.add_argument(
        "--json", metavar="PATH", help="write the machine-readable summary to PATH"
    )
    args = parser.parse_args(argv)
    prosumers = 200 if args.quick else args.prosumers
    small_rows = 1000 if args.quick else 2000
    rounds = 3

    scenario = generate_scenario(ScenarioConfig(prosumer_count=prosumers, seed=args.seed))
    recovery = recovery_summary(scenario, rounds=rounds)
    formats = snapshot_format_summary(scenario, rounds=5)
    deletes = delete_summary(small_rows, rounds=rounds)
    print(
        f"[RECOVERY] {recovery['events']} events, tail {TAIL_FRACTION:.0%}: "
        f"cold {recovery['cold_replay_ms']:.1f} ms vs restore "
        f"{recovery['restore_ms']:.1f} ms -> {recovery['speedup']:.1f}x"
    )
    print(
        f"[FORMATS ] {formats['fact_rows']} fact rows: csv load "
        f"{formats['csv_load_ms']:.1f} ms vs columnar {formats['columnar_load_ms']:.1f} ms "
        f"-> {formats['load_speedup']:.2f}x"
    )
    print(
        f"[DELETES ] {deletes['small_rows']} rows {deletes['small_deletes_per_s']:,}/s, "
        f"{deletes['large_rows']} rows {deletes['large_deletes_per_s']:,}/s "
        f"-> scaling {deletes['scaling']:.2f}"
    )
    stages = store_stage_breakdown(scenario)
    for stage, row in sorted(stages.items()):
        print(
            f"  stage {stage:<32} n={row['count']:<3} mean {row['mean_ms']:8.3f} ms "
            f"max {row['max_ms']:8.3f} ms"
        )
    from benchmarks.conftest import stage_shares

    summary = {
        "schema": 1,
        "quick": bool(args.quick),
        "recovery": recovery,
        "formats": formats,
        "deletes": deletes,
        "stages": stages,
        "stage_shares": stage_shares(stages),
    }
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

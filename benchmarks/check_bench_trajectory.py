"""Gate the live-engine perf trajectory on *relative* benchmark ratios.

CI runs ``python -m benchmarks.bench_live_engine --quick --engine all --json
BENCH_live.json`` (and, since the durability subsystem,
``python -m benchmarks.bench_recovery --quick --json BENCH_recovery.json``)
and then this checker against the committed baselines
(``benchmarks/BENCH_live_baseline.json`` /
``benchmarks/BENCH_recovery_baseline.json``).  Wall-clock milliseconds are
meaningless across runner generations, so they are printed but never gate;
what gates are machine-independent *ratios*:

* ``speedup_vs_batch`` at the 1% touched point for the sharded engine — how
  much the incremental commit beats a full re-aggregation.  A drop of more
  than ``TOLERANCE`` (25%) against the committed baseline fails the job:
  someone made commits relatively more expensive.  (The async engine's
  commit column is *barrier latency* — dominated by worker-thread wakeup
  jitter at quick-sweep scale — so it is reported but not gated.)
* replay throughput of sharded/async *relative to the live engine* — the
  partitioned and asynchronous paths must not drift behind the single-grid
  engine they generalize.
* the standing contract that the sharded engine stays at parity-or-better
  with the live engine at the 1% touched point — the whole point of
  partitioning the grid.  Gated *relative to the baseline's own
  sharded/live ratio* (with ``TOLERANCE``), like every other gate: quick-
  sweep medians cover only a few touched offers, so an absolute threshold
  would flake on noisy shared runners; the absolute comparison is printed
  for the artifact reader (``PARITY_SLACK`` marks when it merely warns).

* the chunked-workload speedup — a commit touching 1 chunk of 16 vs the
  whole-cell re-aggregation any mutation cost before the chunk-granular
  dirty ledger.  Gated relative to the baseline like the other ratios *and*
  against the absolute ``CHUNKED_FLOOR`` (3x) acceptance criterion: this
  ratio compares two commits of the same engine in the same process, so it
  is machine-independent enough for an absolute floor.

* the recovery ratios (when the optional third/fourth arguments name the
  recovery summaries): snapshot+tail restore speedup over cold replay, and
  warehouse delete-throughput scaling across table sizes — both gated
  relative to their committed baseline with the same ``TOLERANCE``.

* the scale claim (``scaling`` in the live summary): commit latency for a
  fixed touched set must stay flat as the stored population grows 10x —
  dirty-cell tracking plus hash-indexed warehouse updates mean commits pay
  for what changed, not what is stored.  ``latency_ratio`` (largest rung
  over smallest) gates against the absolute ``SCALING_CEILING`` only: it
  is a ratio of two medians on differently-sized working sets, jittery
  enough run-to-run (±30% observed on an idle machine) that a
  baseline-relative tolerance would flake; the baseline value is printed
  for the artifact reader.

* the checkpoint-format race (``formats`` in the recovery summary): the
  binary columnar restore must beat the CSV restore of the same state —
  ``load_speedup`` gates against the absolute ``FORMAT_SPEEDUP_FLOOR``
  (1.0: binary at least ties text, same process, same state) and against
  the baseline ratio with ``TOLERANCE``.

* the versioned-read-path storm (``storm`` in the live summary): the
  cached read of an untouched aggregation spec must beat recomputing it
  (``CACHE_SPEEDUP_FLOOR``, 5x), the region-confined write workload must
  keep the result cache hot (``STORM_HIT_FLOOR``) and the concurrent
  reader pool must outpace recomputation (``STORM_THROUGHPUT_FLOOR``) —
  all same-process ratios gated as absolute floors on the current run.

* the observability contract: enabled-vs-disabled commit throughput must
  stay above the absolute ``OBS_FLOOR`` (0.9 — instrumentation may cost at
  most 10% of commit throughput; same-engine same-process ratio, so an
  absolute floor is safe), the head-sampled posture (1-in-16 traces,
  metrics untouched) must recover most of that cost (``sampled_ratio``
  against the absolute ``SAMPLED_FLOOR``, 0.95), and the per-stage latency
  breakdown must keep covering the required stages (commit, kernel, query
  in the live summary; checkpoint and restore in the recovery summary) —
  an instrumented path silently losing its instruments is a regression
  even when it gets faster.

* stage-share drift: once a committed baseline carries ``stage_shares``
  (each stage's fraction of the total instrumented time), the required
  stage groups' shares must stay within ``STAGE_SHARE_TOLERANCE`` (an
  absolute band of share points) of the baseline — a stage silently
  ballooning relative to its peers fails CI even when absolute wall clock
  moved with the runner.  Baselines without the section (pre-tracing) fall
  back to the presence-only check.

Exit code 0 = trajectory healthy, 1 = regression, 2 = malformed input.

Refreshing the baselines after an *intentional* change: run the quick sweeps
locally and commit the JSON they write::

    python -m benchmarks.bench_live_engine --quick --engine all \
        --json benchmarks/BENCH_live_baseline.json
    python -m benchmarks.bench_recovery --quick \
        --json benchmarks/BENCH_recovery_baseline.json
"""

from __future__ import annotations

import json
import sys

#: Engines gated on the 1%-touched commit speedup (async's commit is a
#: barrier, not a drain — too jitter-prone to gate; see module docstring).
SPEEDUP_GATED = ("sharded",)

#: Engines gated on replay throughput relative to the live engine.
REPLAY_GATED = ("sharded", "async")

#: Fraction key of the headline sweep point (1% of the offers touched).
HEADLINE = "0.01"

#: How much a relative ratio may regress vs the committed baseline.
TOLERANCE = 0.25

#: Noise allowance for the sharded-vs-live parity check at the 1% point.
PARITY_SLACK = 0.10

#: Absolute floor on the chunked-workload speedup (1 touched chunk of 16 vs
#: whole-cell re-aggregation) — the ROADMAP live (c) acceptance criterion.
CHUNKED_FLOOR = 3.0

#: Absolute floor on the materialized-view maintenance speedup (per-commit
#: delta application vs a from-scratch ``view.refresh()`` of the same spec)
#: — the PR 10 acceptance criterion.
MATERIALIZED_FLOOR = 3.0

#: Absolute floor on enabled/disabled commit throughput — instrumentation may
#: cost at most 10% (same engine, same process: machine-independent ratio).
OBS_FLOOR = 0.9

#: Absolute floor on the head-sampled (1-in-16 traces, exact metrics) vs
#: disabled commit throughput — the production always-on posture must keep
#: >=95% of uninstrumented throughput.
SAMPLED_FLOOR = 0.95

#: How far a required stage group's share of total instrumented time may move
#: from the committed baseline, in absolute share points.  Generous on
#: purpose: quick sweeps are short and shares jitter; the gate exists to
#: catch a stage ballooning (or vanishing) by a workload-shape margin, not
#: to pin scheduler noise.
STAGE_SHARE_TOLERANCE = 0.20

#: Absolute ceiling on the scaling sweep's commit-latency ratio between the
#: largest and smallest population rung (10x apart).  A truly flat commit
#: path holds this near 1; the ceiling leaves room for cache effects on the
#: bigger working set while still failing anything resembling O(population).
SCALING_CEILING = 3.0

#: Absolute floor on the binary-columnar vs CSV checkpoint restore ratio —
#: the binary format must at least tie the text format it replaces (same
#: state, same process, so an absolute floor is safe).
FORMAT_SPEEDUP_FLOOR = 1.0

#: Absolute floor on the storm's cached-vs-uncached read latency ratio — a
#: cache hit on an untouched aggregation spec must beat recomputing it >=5x
#: (the readpath acceptance criterion; same spec, same snapshot, same
#: process, so an absolute floor is safe).
CACHE_SPEEDUP_FLOOR = 5.0

#: Absolute floor on the storm's cache hit ratio: with the writer confined to
#: one region and the reader specs covering the others, commits must keep
#: carrying the untouched entries — a ratio this low means invalidation went
#: spec-blind.  Observed quick-sweep values sit above 0.95.
STORM_HIT_FLOOR = 0.5

#: Absolute floor on reads the storm pool serves per uncached-recompute time.
#: The raw qps figures jitter with thread scheduling, but the pool beating
#: one recomputation 5x is the minimum for "concurrent reads pay off".
STORM_THROUGHPUT_FLOOR = 5.0

#: Stage histograms the live sweep's instrumented replay must cover; each
#: entry is a group of acceptable names (any one present satisfies the group).
LIVE_REQUIRED_STAGES = (
    ("repro.live.commit.seconds",),
    (
        "repro.aggregation.kernel.numpy.seconds",
        "repro.aggregation.kernel.scalar.seconds",
    ),
    ("repro.session.query.seconds",),
    # The versioned read path: snapshot publication on commit and the
    # cache-fronted read (every default-consistency query probes the cache).
    ("repro.readpath.snapshot.build.seconds",),
    ("repro.readpath.cache.lookup.seconds",),
)

#: Stage histograms the recovery bench's instrumented cycle must cover.
RECOVERY_REQUIRED_STAGES = (
    ("repro.store.checkpoint.seconds",),
    ("repro.store.restore.seconds",),
)


def _missing_stages(stages: dict, required) -> list[str]:
    return [
        " | ".join(group)
        for group in required
        if not any(name in stages for name in group)
    ]


def _share_drift(current: dict, baseline: dict, required, label: str) -> list[str]:
    """Gate required stage groups' share of instrumented time vs the baseline.

    Relative gate with a graceful ramp: it only engages once the committed
    baseline carries a ``stage_shares`` section (pre-tracing baselines keep
    passing on the presence-only check).  Shares are summed per group, so
    e.g. the two kernel histograms count as one stage.
    """
    then_shares = baseline.get("stage_shares")
    if not then_shares:
        print(f"  {label} share drift     : baseline has no stage_shares (presence-only)")
        return []
    now_shares = current.get("stage_shares", {})
    failures = []
    for group in required:
        now = sum(float(now_shares.get(name, 0.0)) for name in group)
        then = sum(float(then_shares.get(name, 0.0)) for name in group)
        drift = now - then
        flag = "DRIFT" if abs(drift) > STAGE_SHARE_TOLERANCE else "ok"
        print(
            f"  share {group[0].removeprefix('repro.').removesuffix('.seconds'):<24}: "
            f"{now:6.3f} (baseline {then:.3f}, drift {drift:+.3f}, "
            f"band ±{STAGE_SHARE_TOLERANCE:.2f}) {flag}"
        )
        if abs(drift) > STAGE_SHARE_TOLERANCE:
            failures.append(
                f"{label}: stage [{' | '.join(group)}] share of instrumented time "
                f"drifted {drift:+.3f} vs baseline (band ±{STAGE_SHARE_TOLERANCE:.2f})"
            )
    return failures


def _speedup(summary: dict, engine: str, fraction: str = HEADLINE) -> float:
    return float(summary["engines"][engine]["sweep"][fraction]["speedup_vs_batch"])


def _replay_ratio(summary: dict, engine: str) -> float:
    live = float(summary["engines"]["live"]["replay"]["events_per_second"])
    return float(summary["engines"][engine]["replay"]["events_per_second"]) / live


def check(current: dict, baseline: dict) -> list[str]:
    """Return the list of gate failures (empty = healthy)."""
    failures: list[str] = []
    floor = 1.0 - TOLERANCE
    for engine in SPEEDUP_GATED:
        now, then = _speedup(current, engine), _speedup(baseline, engine)
        print(
            f"  {engine:>7} speedup@1%      : {now:6.1f}x (baseline {then:.1f}x, "
            f"floor {then * floor:.1f}x)"
        )
        if now < then * floor:
            failures.append(
                f"{engine}: speedup@1% regressed >{TOLERANCE:.0%} "
                f"({now:.1f}x vs baseline {then:.1f}x)"
            )
    for engine in REPLAY_GATED:
        now_r, then_r = _replay_ratio(current, engine), _replay_ratio(baseline, engine)
        print(
            f"  {engine:>7} replay vs live  : {now_r:6.2f} (baseline {then_r:.2f}, "
            f"floor {then_r * floor:.2f})"
        )
        if now_r < then_r * floor:
            failures.append(
                f"{engine}: replay throughput vs live regressed >{TOLERANCE:.0%} "
                f"({now_r:.2f} vs baseline {then_r:.2f})"
            )
    sharded, live = _speedup(current, "sharded"), _speedup(current, "live")
    parity = sharded / live
    parity_then = _speedup(baseline, "sharded") / _speedup(baseline, "live")
    print(
        f"  sharded vs live @1%     : {sharded:6.1f}x vs {live:.1f}x "
        f"(ratio {parity:.2f}, baseline {parity_then:.2f}, "
        f"floor {parity_then * floor:.2f})"
    )
    if parity < parity_then * floor:
        failures.append(
            f"sharded fell behind live at the 1% point "
            f"(ratio {parity:.2f} vs baseline {parity_then:.2f}, "
            f"tolerance {TOLERANCE:.0%})"
        )
    elif parity < 1.0 - PARITY_SLACK:
        print(
            f"  WARNING: sharded below live parity this run "
            f"({parity:.2f} < {1.0 - PARITY_SLACK:.2f}) — noise or a creeping "
            f"regression; within baseline tolerance, not gating"
        )
    # Chunk-granular commits: cost must scale with touched chunks, not cell
    # size.  Gated both relative to the committed baseline (like every other
    # ratio) and against the absolute CHUNKED_FLOOR acceptance criterion.
    if "chunked" not in current:
        failures.append("chunked workload summary missing from the current sweep")
    else:
        # The absolute floor gates unconditionally — it is machine- and
        # baseline-independent (two commits of the same engine, same process).
        now_c = float(current["chunked"]["speedup"])
        then_c = float(baseline["chunked"]["speedup"]) if "chunked" in baseline else None
        print(
            f"  chunked 1-of-{current['chunked']['chunks']} speedup: {now_c:6.1f}x "
            f"(baseline {then_c or 0.0:.1f}x, floor "
            f"{max(then_c * floor if then_c else 0.0, CHUNKED_FLOOR):.1f}x)"
        )
        if now_c < CHUNKED_FLOOR:
            failures.append(
                f"chunked: 1-touched-chunk speedup {now_c:.1f}x fell below the "
                f"absolute {CHUNKED_FLOOR:.0f}x acceptance floor"
            )
        elif then_c is not None and now_c < then_c * floor:
            failures.append(
                f"chunked: speedup regressed >{TOLERANCE:.0%} "
                f"({now_c:.1f}x vs baseline {then_c:.1f}x)"
            )
    # Materialized views: per-commit delta maintenance must beat a full
    # refresh of the same spec.  Same gating shape as the chunked workload —
    # an unconditional absolute floor (same process, same spec: machine-
    # independent) plus the baseline-relative tolerance.
    if "materialized" not in current:
        failures.append("materialized-view summary missing from the current sweep")
    else:
        now_m = float(current["materialized"]["speedup"])
        then_m = (
            float(baseline["materialized"]["speedup"])
            if "materialized" in baseline
            else None
        )
        print(
            f"  materialized maintenance: {now_m:6.1f}x vs full refresh "
            f"(baseline {then_m or 0.0:.1f}x, floor "
            f"{max(then_m * floor if then_m else 0.0, MATERIALIZED_FLOOR):.1f}x)"
        )
        if now_m < MATERIALIZED_FLOOR:
            failures.append(
                f"materialized: delta-maintenance speedup {now_m:.1f}x fell below "
                f"the absolute {MATERIALIZED_FLOOR:.0f}x acceptance floor"
            )
        elif then_m is not None and now_m < then_m * floor:
            failures.append(
                f"materialized: speedup regressed >{TOLERANCE:.0%} "
                f"({now_m:.1f}x vs baseline {then_m:.1f}x)"
            )
    # The scale claim: a fixed touched set must cost the same to commit no
    # matter how many offers are resident.  Gated against the absolute
    # ceiling only — the ratio's run-to-run jitter (±30% observed) makes a
    # baseline-relative tolerance flake; the baseline is informational.
    if "scaling" not in current:
        failures.append("scaling sweep summary missing from the current sweep")
    else:
        now_f = float(current["scaling"]["latency_ratio"])
        then_f = (
            float(baseline["scaling"]["latency_ratio"]) if "scaling" in baseline else None
        )
        rungs = current["scaling"]["rungs"]
        print(
            f"  scaling {current['scaling']['population_ratio']:.0f}x population : "
            f"{now_f:6.2f}x commit latency "
            f"({rungs[0]['commit_ms']:.1f} -> {rungs[-1]['commit_ms']:.1f} ms, "
            f"baseline {then_f if then_f is not None else float('nan'):.2f}x "
            f"informational, absolute ceiling {SCALING_CEILING:.1f}x)"
        )
        if now_f > SCALING_CEILING:
            failures.append(
                f"scaling: commit latency grew {now_f:.2f}x over a "
                f"{current['scaling']['population_ratio']:.0f}x population — "
                f"above the absolute {SCALING_CEILING:.1f}x flatness ceiling"
            )
    # Observability: instrumentation overhead and stage coverage.  Both gate
    # on the *current* run only (absolute, machine-independent contracts), so
    # pre-obs baselines stay readable.
    if "obs" not in current:
        failures.append("observability overhead row missing from the current sweep")
    else:
        ratio = float(current["obs"]["throughput_ratio"])
        print(
            f"  obs enabled/disabled    : {ratio:6.3f} "
            f"(absolute floor {OBS_FLOOR:.2f})"
        )
        if ratio < OBS_FLOOR:
            failures.append(
                f"obs: instrumentation costs >{1 - OBS_FLOOR:.0%} of commit "
                f"throughput (enabled/disabled ratio {ratio:.3f} < {OBS_FLOOR:.2f})"
            )
        if "sampled_ratio" not in current["obs"]:
            failures.append("obs: sampled (1-in-16) leg missing from the current sweep")
        else:
            sampled = float(current["obs"]["sampled_ratio"])
            print(
                f"  obs sampled/disabled    : {sampled:6.3f} "
                f"(absolute floor {SAMPLED_FLOOR:.2f})"
            )
            if sampled < SAMPLED_FLOOR:
                failures.append(
                    f"obs: head-sampled tracing costs >{1 - SAMPLED_FLOOR:.0%} of "
                    f"commit throughput (sampled/disabled ratio {sampled:.3f} "
                    f"< {SAMPLED_FLOOR:.2f})"
                )
    # The versioned read path's storm: cached reads must beat recomputation,
    # the writer-confined workload must keep the cache hot, and the reader
    # pool must outpace recomputation while commits land underneath it.  All
    # three are same-process ratios gated on the *current* run only (absolute
    # floors, like the obs contract), so pre-readpath baselines stay readable.
    if "storm" not in current:
        failures.append("query-storm summary missing from the current sweep")
    else:
        storm = current["storm"]
        speedup = float(storm["cache_speedup"])
        hit_ratio = float(storm["hit_ratio"])
        throughput = float(storm["throughput_vs_recompute"])
        print(
            f"  storm cached vs uncached: {speedup:6.1f}x "
            f"(absolute floor {CACHE_SPEEDUP_FLOOR:.0f}x)"
        )
        print(
            f"  storm cache hit ratio   : {hit_ratio:6.3f} "
            f"(absolute floor {STORM_HIT_FLOOR:.2f}, "
            f"{storm['commits_during_storm']} commits mid-storm)"
        )
        print(
            f"  storm pool vs recompute : {throughput:6.1f}x "
            f"(absolute floor {STORM_THROUGHPUT_FLOOR:.0f}x; "
            f"{storm['storm_qps']:,.0f} reads/s raw, informational)"
        )
        if speedup < CACHE_SPEEDUP_FLOOR:
            failures.append(
                f"storm: cached untouched-spec read only {speedup:.1f}x the "
                f"uncached recomputation (floor {CACHE_SPEEDUP_FLOOR:.0f}x)"
            )
        if hit_ratio < STORM_HIT_FLOOR:
            failures.append(
                f"storm: cache hit ratio {hit_ratio:.3f} under the confined "
                f"writer fell below the {STORM_HIT_FLOOR:.2f} floor"
            )
        if throughput < STORM_THROUGHPUT_FLOOR:
            failures.append(
                f"storm: reader pool served only {throughput:.1f}x one "
                f"recompute time of reads (floor {STORM_THROUGHPUT_FLOOR:.0f}x)"
            )
    stages = current.get("stages", {})
    missing = _missing_stages(stages, LIVE_REQUIRED_STAGES)
    print(
        f"  obs stage coverage      : {len(stages)} stages recorded, "
        f"{len(missing)} required group(s) missing"
    )
    for group in missing:
        failures.append(f"obs: no observations for required stage [{group}]")
    failures.extend(_share_drift(current, baseline, LIVE_REQUIRED_STAGES, "live"))
    # Informational only: absolute wall clock, for the artifact reader.
    for engine in ("live", *REPLAY_GATED):
        row = current["engines"][engine]["sweep"][HEADLINE]
        print(
            f"  {engine:>7} commit@1% wall  : {row['commit_ms']:8.3f} ms "
            f"(informational, not gated)"
        )
    return failures


def check_recovery(current: dict, baseline: dict) -> list[str]:
    """Gate the durability ratios (restore speedup, delete scaling)."""
    failures: list[str] = []
    floor = 1.0 - TOLERANCE
    now = float(current["recovery"]["speedup"])
    then = float(baseline["recovery"]["speedup"])
    print(
        f"  restore vs cold replay  : {now:6.1f}x (baseline {then:.1f}x, "
        f"floor {then * floor:.1f}x)"
    )
    if now < then * floor:
        failures.append(
            f"recovery: snapshot+tail restore speedup regressed >{TOLERANCE:.0%} "
            f"({now:.1f}x vs baseline {then:.1f}x)"
        )
    now_s = float(current["deletes"]["scaling"])
    then_s = float(baseline["deletes"]["scaling"])
    print(
        f"  delete scaling 4x table : {now_s:6.2f} (baseline {then_s:.2f}, "
        f"floor {then_s * floor:.2f})"
    )
    if now_s < then_s * floor:
        failures.append(
            f"recovery: delete throughput degrades with table size again "
            f"(scaling {now_s:.2f} vs baseline {then_s:.2f})"
        )
    # The checkpoint-format race: binary columnar restore vs CSV restore of
    # the same state.  Absolute floor (binary must at least tie text) plus
    # the usual baseline-relative tolerance once a baseline carries it.
    if "formats" not in current:
        failures.append("checkpoint-format summary missing from the recovery sweep")
    else:
        now_b = float(current["formats"]["load_speedup"])
        then_b = (
            float(baseline["formats"]["load_speedup"]) if "formats" in baseline else None
        )
        print(
            f"  columnar vs csv restore : {now_b:6.2f}x "
            f"({current['formats']['csv_load_ms']:.1f} -> "
            f"{current['formats']['columnar_load_ms']:.1f} ms, "
            f"baseline {then_b if then_b is not None else float('nan'):.2f}x, "
            f"absolute floor {FORMAT_SPEEDUP_FLOOR:.1f}x)"
        )
        if now_b < FORMAT_SPEEDUP_FLOOR:
            failures.append(
                f"formats: binary columnar restore slower than the CSV restore "
                f"it replaces ({now_b:.2f}x < {FORMAT_SPEEDUP_FLOOR:.1f}x)"
            )
        elif then_b is not None and now_b < then_b * floor:
            failures.append(
                f"formats: columnar restore speedup regressed >{TOLERANCE:.0%} "
                f"({now_b:.2f}x vs baseline {then_b:.2f}x)"
            )
    stages = current.get("stages", {})
    missing = _missing_stages(stages, RECOVERY_REQUIRED_STAGES)
    print(
        f"  obs store stages        : {len(stages)} recorded, "
        f"{len(missing)} required missing"
    )
    for group in missing:
        failures.append(f"obs: no observations for required store stage [{group}]")
    failures.extend(
        _share_drift(current, baseline, RECOVERY_REQUIRED_STAGES, "recovery")
    )
    print(
        f"  restore wall            : {current['recovery']['restore_ms']:8.1f} ms vs "
        f"cold {current['recovery']['cold_replay_ms']:.1f} ms (informational)"
    )
    return failures


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) not in (2, 4):
        print(
            "usage: python -m benchmarks.check_bench_trajectory CURRENT.json BASELINE.json "
            "[RECOVERY_CURRENT.json RECOVERY_BASELINE.json]",
            file=sys.stderr,
        )
        return 2
    try:
        with open(argv[0], encoding="utf-8") as handle:
            current = json.load(handle)
        with open(argv[1], encoding="utf-8") as handle:
            baseline = json.load(handle)
        print(f"[bench trajectory] current={argv[0]} baseline={argv[1]}")
        failures = check(current, baseline)
        if len(argv) == 4:
            with open(argv[2], encoding="utf-8") as handle:
                recovery_current = json.load(handle)
            with open(argv[3], encoding="utf-8") as handle:
                recovery_baseline = json.load(handle)
            print(f"[recovery trajectory] current={argv[2]} baseline={argv[3]}")
            failures.extend(check_recovery(recovery_current, recovery_baseline))
    except (OSError, KeyError, ValueError, ZeroDivisionError) as exc:
        print(f"malformed benchmark summary: {exc!r}", file=sys.stderr)
        return 2
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("trajectory OK: no relative regression beyond tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

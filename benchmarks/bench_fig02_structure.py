"""FIG-2 bench: the structural elements of a single flex-offer.

Figure 2 annotates one flex-offer with its profile, start-time flexibility,
energy flexibility, acceptance/assignment times and the scheduled amounts.
The bench times the regeneration of that figure (profile view of one offer
plus the deadline markers) and reports the structural quantities shown.
"""

from __future__ import annotations

from benchmarks.conftest import record
from repro.app.figures import figure_2


def test_fig02_flex_offer_structure(benchmark, paper_scenario):
    artifact = benchmark.pedantic(lambda: figure_2(paper_scenario), rounds=5, iterations=1)
    summary = dict(artifact.summary)
    summary.pop("detail_lines", None)
    record(
        benchmark,
        {
            **summary,
            "svg_bytes": len(artifact.svg),
            "paper_claim": "profile, time flexibility, energy flexibility, deadlines and schedule are all visible",
        },
        "Figure 2: structural elements of a flex-offer",
    )
    assert artifact.summary["time_flexibility_slots"] > 0
    assert artifact.summary["max_total_energy"] > artifact.summary["min_total_energy"] - 1e-9

"""FIG-10 bench: on-the-fly information about a pointed flex-offer.

Figure 10 shows the hover interaction: yellow marker lines for the
creation/acceptance/assignment times and red dashed links from an aggregate
to its constituents.  The bench times the hover pipeline (hit-test -> detail
record -> overlay nodes) on the basic view of an aggregated offer set.
"""

from __future__ import annotations

from benchmarks.conftest import record
from repro.aggregation.aggregate import aggregate
from repro.aggregation.parameters import AggregationParameters
from repro.render.scene import Line
from repro.views.basic import BasicView
from repro.views.tooltip import describe, overlay


def test_fig10_hover_pipeline(benchmark, paper_scenario):
    result = aggregate(
        paper_scenario.flex_offers,
        AggregationParameters(est_tolerance_slots=6, time_flexibility_tolerance_slots=6),
    )
    aggregate_offer = max(result.aggregates, key=lambda offer: len(offer.constituent_ids))
    # Show the pointed aggregate together with the raw offers so its provenance
    # links can point at the constituents' lanes (the Figure 10 situation).
    view = BasicView(list(paper_scenario.flex_offers) + [aggregate_offer], paper_scenario.grid)
    scene = view.scene()
    area = view.options.plot_area
    scale = view._time_scale(area)

    def hover():
        details = describe(aggregate_offer, paper_scenario.grid)
        nodes = overlay(
            aggregate_offer,
            scale,
            area,
            lane_assignment=view.lane_assignment,
            lane_height=view._lane_height(area),
        )
        return details, nodes

    details, nodes = benchmark(hover)
    markers = [n for n in nodes.walk() if isinstance(n, Line) and n.css_class == "time-marker"]
    links = [n for n in nodes.walk() if isinstance(n, Line) and n.css_class == "provenance-link"]
    record(
        benchmark,
        {
            "hovered_offer": aggregate_offer.id,
            "constituents": len(aggregate_offer.constituent_ids),
            "time_markers_drawn": len(markers),
            "provenance_links_drawn": len(links),
            "detail_lines": len(details.lines()),
            "scene_nodes": scene.count_nodes(),
            "paper_claim": "yellow creation/acceptance/assignment markers + red dashed provenance links",
        },
        "Figure 10: on-the-fly information",
    )
    assert len(links) == len(aggregate_offer.constituent_ids)
    assert 1 <= len(markers) <= 3


def test_fig10_hit_test(benchmark, paper_scenario):
    """The pointer query itself: which flex-offer is under a pixel."""
    view = BasicView(paper_scenario.flex_offers, paper_scenario.grid)
    scene = view.scene()
    from repro.render.scene import Rect

    box = next(node for node in scene.walk() if isinstance(node, Rect) and "profile-box" in node.css_class)
    x, y = box.x + box.width / 2, box.y + box.height / 2

    offer_id = benchmark(lambda: view.offer_at(x, y))
    record(benchmark, {"probed_pixel": f"({x:.0f}, {y:.0f})", "offer_under_pointer": offer_id}, "Figure 10: hit test")
    assert offer_id is not None

"""FIG-3 bench: the map view of flex-offers.

Figure 3 shows flex-offer counts (by state) as bar glyphs per geographical
region.  The bench times building and serialising the map view and reports
the per-region counts — the "rows" of the figure.
"""

from __future__ import annotations

from benchmarks.conftest import record
from repro.views.map_view import MapView, MapViewOptions


def test_fig03_map_view_regions(benchmark, paper_scenario):
    def build() -> tuple[MapView, str]:
        view = MapView(paper_scenario.flex_offers, paper_scenario.geography, paper_scenario.grid)
        return view, view.to_svg()

    view, svg = benchmark.pedantic(build, rounds=5, iterations=1)
    counts = view.state_counts()
    per_region = {region: int(sum(values.values())) for region, values in sorted(counts.items())}
    record(
        benchmark,
        {
            **{f"offers_{region}": value for region, value in per_region.items()},
            "regions_shown": len(view.place_anchors()),
            "svg_bytes": len(svg),
            "paper_claim": "per-region bar glyphs of flex-offer counts on a map of Denmark",
        },
        "Figure 3: map view",
    )
    assert len(view.place_anchors()) == 5
    assert sum(per_region.values()) > 0


def test_fig03_map_view_city_drilldown(benchmark, paper_scenario):
    """City-level drill-down of the same view (the Section-3 geographic hierarchy)."""
    def build() -> str:
        view = MapView(
            paper_scenario.flex_offers,
            paper_scenario.geography,
            paper_scenario.grid,
            options=MapViewOptions(level="city"),
        )
        return view.to_svg()

    svg = benchmark.pedantic(build, rounds=3, iterations=1)
    record(benchmark, {"svg_bytes": len(svg), "level": "city"}, "Figure 3: city drill-down")
    assert "state-bar" in svg

"""CLAIM-4 bench: incremental rendering keeps the tool responsive.

The paper: "the incremental rendering of flex-offers … allows executing
actions when a flex-offer rendering is in progress (rendering does not freeze
the tool)".  The bench compares the latency until the *first* chunk of the
basic view is available against a monolithic render of the whole scene, and
sweeps the chunk size (the responsiveness/throughput knob).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record
from repro.render.incremental import IncrementalRenderer, monolithic_render_time, time_to_first_chunk
from repro.views.basic import BasicView


@pytest.fixture(scope="module")
def big_scene(large_offer_scenario):
    view = BasicView(large_offer_scenario.flex_offers, large_offer_scenario.grid)
    return view.scene()


def test_claim4_first_chunk_latency(benchmark, big_scene):
    """Latency to the first visible chunk vs a full monolithic render."""
    first = benchmark(lambda: time_to_first_chunk(big_scene, chunk_size=100))
    full = monolithic_render_time(big_scene)
    record(
        benchmark,
        {
            "scene_nodes": big_scene.count_nodes(),
            "time_to_first_chunk_ms": round(first * 1000, 2),
            "monolithic_render_ms": round(full * 1000, 2),
            "speedup_to_first_pixel": round(full / first, 1) if first > 0 else float("inf"),
            "paper_claim": "rendering does not freeze the tool",
        },
        "CLAIM-4: incremental rendering",
    )
    assert first <= full * 1.2 + 0.05


def test_claim4_chunk_size_sweep(benchmark, big_scene):
    """Ablation: smaller chunks give faster first feedback but more chunks overall."""
    def sweep():
        rows = {}
        for chunk_size in (50, 200, 1000):
            renderer = IncrementalRenderer(chunk_size=chunk_size, emit_documents=False)
            chunks = list(renderer.render(big_scene))
            rows[chunk_size] = {
                "chunks": len(chunks),
                "first_chunk_ms": round(chunks[0].elapsed_seconds * 1000, 3),
                "total_ms": round(chunks[-1].elapsed_seconds * 1000, 3),
            }
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record(
        benchmark,
        {f"chunk_size_{size}": str(values) for size, values in rows.items()},
        "CLAIM-4: chunk-size sweep",
    )
    assert rows[50]["chunks"] > rows[1000]["chunks"]


def test_claim4_interleaved_work(benchmark, big_scene):
    """Actions can run between chunks: count how many interleaved steps fit during a render."""
    def interleave():
        renderer = IncrementalRenderer(chunk_size=100, emit_documents=False)
        interleaved_actions = 0
        for chunk in renderer.render(big_scene):
            # The "action" the analyst performs while rendering is in progress.
            interleaved_actions += 1
        return interleaved_actions

    actions = benchmark(interleave)
    record(benchmark, {"interleaved_actions": actions}, "CLAIM-4: interleaved work")
    assert actions >= 1

"""FIG-6 bench: the dashboard view over a selected time interval.

Figure 6 summarises the flex-offer data for 2012-02-01 12:00-13:15: a pie of
the accepted/assigned/rejected shares (31%/43%/26% in the paper's mock) and a
stacked per-15-minute bar chart of the same counts.  The bench regenerates
that window and reports the measured shares next to the paper's.
"""

from __future__ import annotations

from benchmarks.conftest import record
from repro.views.dashboard import DashboardOptions, DashboardView

#: The shares shown in the paper's mock dashboard.
PAPER_SHARES = {"accepted": 31, "assigned": 43, "rejected": 26}


def test_fig06_dashboard_window(benchmark, paper_scenario):
    origin = paper_scenario.grid.origin
    options = DashboardOptions(
        interval_start=origin.replace(hour=12, minute=0),
        interval_end=origin.replace(hour=13, minute=15),
        bucket_slots=1,
    )

    def build():
        view = DashboardView(paper_scenario.flex_offers, paper_scenario.grid, options=options)
        return view, view.to_svg()

    view, svg = benchmark.pedantic(build, rounds=5, iterations=1)
    shares = {state: round(value) for state, value in view.state_percentages().items()}
    record(
        benchmark,
        {
            "interval": "2012-02-01 12:00 .. 13:15",
            "offers_in_interval": len(view.offers),
            **{f"measured_{state}_pct": value for state, value in shares.items()},
            **{f"paper_{state}_pct": value for state, value in PAPER_SHARES.items()},
            "svg_bytes": len(svg),
        },
        "Figure 6: dashboard view",
    )
    # Shape check: all three states appear and percentages sum to ~100.
    assert abs(sum(shares.values()) - 100) <= 2 or sum(shares.values()) == 0
    assert len(view.offers) > 0


def test_fig06_dashboard_full_day(benchmark, paper_scenario):
    """The same dashboard over the whole day (the default summary view)."""
    def build():
        view = DashboardView(paper_scenario.flex_offers, paper_scenario.grid)
        return view.state_totals()

    totals = benchmark.pedantic(build, rounds=5, iterations=1)
    record(benchmark, {f"total_{state}": value for state, value in totals.items()}, "Figure 6: full day")
    assert sum(totals.values()) > 0

"""FIG-8 bench: the basic view of a large flex-offer set.

Figure 8 shows the basic view: lane-stacked boxes with time-flexibility
rectangles, scheduled-start lines, aggregated/non-aggregated colours and a
rectangle selection.  The bench times view construction + SVG serialisation
on ~1500 flex-offers and ablates the lane-packing strategy (greedy first-fit
vs one offer per lane).
"""

from __future__ import annotations

from benchmarks.conftest import record
from repro.views.basic import BasicView, BasicViewOptions
from repro.views.lanes import LaneStrategy, lane_count
from repro.views.selection import SelectionModel, SelectionRectangle


def test_fig08_basic_view_render(benchmark, large_offer_scenario):
    offers = large_offer_scenario.flex_offers

    def build():
        view = BasicView(offers, large_offer_scenario.grid)
        return view, view.to_svg()

    view, svg = benchmark.pedantic(build, rounds=3, iterations=1)
    record(
        benchmark,
        {
            "offer_count": len(offers),
            "lane_count": lane_count(view.lane_assignment),
            "scene_nodes": view.scene().count_nodes(),
            "svg_bytes": len(svg),
            "paper_claim": "the basic view shows a large number of flex-offers at once",
        },
        "Figure 8: basic view",
    )
    assert lane_count(view.lane_assignment) < len(offers)


def test_fig08_rectangle_selection(benchmark, large_offer_scenario):
    """The rectangle-selection interaction drawn in Figure 8."""
    offers = large_offer_scenario.flex_offers
    view = BasicView(offers, large_offer_scenario.grid)
    area = view.options.plot_area
    rectangle = SelectionRectangle(
        area.left + area.width * 0.25,
        area.top + area.height * 0.2,
        area.left + area.width * 0.6,
        area.top + area.height * 0.7,
    )

    def select():
        model = SelectionModel(offers)
        return model.select_rectangle(view, rectangle)

    selected = benchmark(select)
    record(
        benchmark,
        {"offer_count": len(offers), "selected_by_rectangle": len(selected)},
        "Figure 8: rectangle selection",
    )
    assert 0 < len(selected) < len(offers)


def test_fig08_lane_packing_ablation(benchmark, large_offer_scenario):
    """Ablation: greedy first-fit packing vs one lane per offer (vertical space)."""
    offers = large_offer_scenario.flex_offers

    def build_packed():
        view = BasicView(offers, large_offer_scenario.grid, options=BasicViewOptions(lane_strategy=LaneStrategy.FIRST_FIT))
        return lane_count(view.lane_assignment)

    packed_lanes = benchmark.pedantic(build_packed, rounds=3, iterations=1)
    naive_view = BasicView(
        offers, large_offer_scenario.grid, options=BasicViewOptions(lane_strategy=LaneStrategy.ONE_PER_LANE)
    )
    naive_lanes = lane_count(naive_view.lane_assignment)
    record(
        benchmark,
        {
            "offer_count": len(offers),
            "lanes_first_fit": packed_lanes,
            "lanes_one_per_offer": naive_lanes,
            "vertical_space_saving": round(naive_lanes / packed_lanes, 1),
        },
        "Figure 8 ablation: lane packing",
    )
    assert packed_lanes < naive_lanes

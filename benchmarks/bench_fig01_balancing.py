"""FIG-1 bench: loads before vs after MIRABEL balancing.

The paper's Figure 1 contrasts RES production against non-flexible and
flexible demand before/after the system balances the grid.  The bench times
one full planning cycle and reports the quantities the figure conveys: how
much flexible energy sits inside the RES surplus before and after planning,
the absorption ratio, and the residual imbalance.  An ablation compares the
aggregate-then-schedule pipeline against scheduling the raw offers.
"""

from __future__ import annotations

from benchmarks.conftest import record
from repro.enterprise.planning import PlanningConfig, run_planning_cycle
from repro.scheduling.greedy import GreedyScheduler
from repro.views.dashboard import BalanceView


def _overlap(scenario, plan, load):
    return BalanceView(scenario.res_production, scenario.base_demand, load, scenario.grid).overlap_energy()


def test_fig01_balancing_before_after(benchmark, paper_scenario):
    """Regenerate Figure 1: run the planning cycle and compare before/after overlap."""
    plan = benchmark.pedantic(
        lambda: run_planning_cycle(paper_scenario, scheduler=GreedyScheduler()),
        rounds=3,
        iterations=1,
    )
    before = _overlap(paper_scenario, plan, plan.unplanned_load)
    after = _overlap(paper_scenario, plan, plan.planned_load)
    record(
        benchmark,
        {
            "res_energy_kwh": round(paper_scenario.res_production.total(), 1),
            "non_flexible_demand_kwh": round(paper_scenario.base_demand.total(), 1),
            "flexible_energy_before_kwh": round(plan.unplanned_load.total(), 1),
            "flexible_energy_after_kwh": round(plan.planned_load.total(), 1),
            "overlap_before_kwh": round(before, 1),
            "overlap_after_kwh": round(after, 1),
            "overlap_improvement_factor": round(after / before, 2) if before else float("inf"),
            "absorption_ratio": round(plan.balance_report.absorption_ratio, 3),
            "imbalance_energy_kwh": round(plan.balance_report.imbalance_energy, 1),
            "paper_claim": "after balancing, flexible demand moves under the RES production curve",
        },
        "Figure 1: before vs after balancing",
    )
    assert after >= before


def test_fig01_ablation_aggregation_in_the_loop(benchmark, paper_scenario):
    """Ablation: planning with aggregation must schedule far fewer objects."""
    with_aggregation = run_planning_cycle(
        paper_scenario, scheduler=GreedyScheduler(), config=PlanningConfig(use_aggregation=True)
    )
    without = benchmark.pedantic(
        lambda: run_planning_cycle(
            paper_scenario, scheduler=GreedyScheduler(), config=PlanningConfig(use_aggregation=False)
        ),
        rounds=1,
        iterations=1,
    )
    record(
        benchmark,
        {
            "objects_with_aggregation": with_aggregation.pipeline.scheduled_object_count,
            "objects_without_aggregation": without.pipeline.scheduled_object_count,
            "runtime_with_aggregation_s": round(with_aggregation.pipeline.runtime_seconds, 3),
            "runtime_without_aggregation_s": round(without.pipeline.runtime_seconds, 3),
            "absorption_with_aggregation": round(with_aggregation.balance_report.absorption_ratio, 3),
            "absorption_without_aggregation": round(without.balance_report.absorption_ratio, 3),
        },
        "Figure 1 ablation: aggregate-then-schedule",
    )
    assert with_aggregation.pipeline.scheduled_object_count < without.pipeline.scheduled_object_count

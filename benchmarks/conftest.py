"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's figures (or backs one of its
qualitative performance claims) and records the headline numbers in
``benchmark.extra_info`` so they appear in the pytest-benchmark report.  Run
with ``pytest benchmarks/ --benchmark-only`` (add ``-s`` to also see the
printed rows).
"""

from __future__ import annotations

import pytest

from repro.datagen.scenarios import Scenario, ScenarioConfig, generate_scenario


@pytest.fixture(scope="session")
def paper_scenario() -> Scenario:
    """The default one-day scenario used by the figure benchmarks (~300 flex-offers)."""
    return generate_scenario(ScenarioConfig(prosumer_count=200, seed=42))


@pytest.fixture(scope="session")
def large_offer_scenario() -> Scenario:
    """A larger scenario (~1500 flex-offers) for the basic-view and aggregation benches."""
    return generate_scenario(ScenarioConfig(prosumer_count=1000, seed=43))


def record(benchmark, summary: dict, label: str) -> None:
    """Attach ``summary`` to the benchmark report and print it for -s runs."""
    for key, value in summary.items():
        benchmark.extra_info[key] = value
    print(f"\n[{label}]")
    for key, value in summary.items():
        print(f"  {key:<38} {value}")


def stage_rows(registry) -> dict:
    """Latency histograms with data as JSON-ready per-stage rows (ms).

    Shared by the live and recovery benches: both run part of their workload
    with :mod:`repro.obs` enabled and persist the per-stage breakdown into
    their ``--json`` summaries, which ``check_bench_trajectory.py`` gates on
    stage presence and share drift.
    """
    from repro.obs.metrics import Histogram

    rows: dict[str, dict] = {}
    for instrument in registry.instruments():
        if not isinstance(instrument, Histogram):
            continue
        if not instrument.name.endswith(".seconds") or not instrument.count:
            continue
        rows[instrument.name] = {
            "count": instrument.count,
            "mean_ms": round(instrument.mean * 1000, 4),
            "p95_ms": round(instrument.quantile(0.95) * 1000, 4),
            "max_ms": round(instrument.snapshot()["max"] * 1000, 4),
        }
    return rows


def stage_shares(stages: dict) -> dict:
    """Each stage's share of the total instrumented time, from ``stage_rows``.

    ``share = count * mean_ms / sum over all stages`` — a machine-independent
    shape of where the workload's time goes.  The trajectory checker compares
    these shares against the committed baseline inside a tolerance band, so a
    stage silently ballooning (or a refactor silently un-instrumenting one)
    fails CI even when absolute latencies moved with the hardware.
    """
    totals = {name: row["count"] * row["mean_ms"] for name, row in stages.items()}
    grand = sum(totals.values())
    if grand <= 0:
        return {}
    return {name: round(total / grand, 4) for name, total in totals.items()}

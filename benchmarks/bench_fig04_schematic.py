"""FIG-4 bench: the schematic (grid-topology) view.

Figure 4 shows the electrical grid structure with, at every node, a pie of
the accepted/assigned/rejected shares of the flex-offers below it.  The bench
times the view construction and reports the share distribution of the busiest
node — the quantity the figure's pies encode (the paper's mock shows
31% / 43% / 26%).
"""

from __future__ import annotations

from benchmarks.conftest import record
from repro.views.schematic import SchematicView


def test_fig04_schematic_view(benchmark, paper_scenario):
    def build() -> tuple[SchematicView, str]:
        view = SchematicView(paper_scenario.flex_offers, paper_scenario.topology, paper_scenario.grid)
        return view, view.to_svg()

    view, svg = benchmark.pedantic(build, rounds=5, iterations=1)
    shares = view.state_shares()
    busiest = max(shares, key=lambda node: sum(shares[node].values()))
    busiest_total = sum(shares[busiest].values())
    percentages = {
        state: round(100.0 * value / busiest_total)
        for state, value in sorted(shares[busiest].items())
    }
    record(
        benchmark,
        {
            "nodes_with_offers": len(shares),
            "busiest_node": busiest,
            "busiest_node_offers": int(busiest_total),
            **{f"busiest_{state}_pct": value for state, value in percentages.items()},
            "svg_bytes": len(svg),
            "paper_claim": "per-node accepted/assigned/rejected pies (paper mock: 31%/43%/26%)",
        },
        "Figure 4: schematic view",
    )
    assert busiest_total > 0
    assert abs(sum(percentages.values()) - 100) <= 2  # rounding slack

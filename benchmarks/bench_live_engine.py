"""LIVE bench: incremental dirty-group commits beat full re-aggregation.

The live engine re-aggregates only the grid cells touched since the last
commit, so commit cost scales with the touched fraction of the population
while the batch pipeline always pays for everyone.  The sweep records commit
time against a full re-aggregation for touched-offer fractions of 1%, 5% and
25% of the large scenario; the headline requirement is a >=5x speedup at the
1% point.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import replace

import numpy as np
import pytest

from benchmarks.conftest import record
from repro.aggregation.aggregate import aggregate
from repro.live.engine import LiveAggregationEngine
from repro.live.events import OfferAdded, OfferUpdated
from repro.live.replay import replay, scenario_event_stream

#: Touched-offer fractions the acceptance sweep covers.
FRACTIONS = (0.01, 0.05, 0.25)


def _seeded_engine(offers) -> LiveAggregationEngine:
    engine = LiveAggregationEngine()
    for offer in offers:
        engine.apply(OfferAdded(offer.creation_time, offer))
    engine.commit()
    return engine


def _batch_seconds(offers, rounds: int = 9) -> float:
    timings = []
    for _ in range(rounds):
        started = time.perf_counter()
        aggregate(offers)
        timings.append(time.perf_counter() - started)
    return statistics.median(timings)


def _commit_seconds(engine, offers, fraction: float, rng, rounds: int = 9) -> float:
    """Median commit time after revising ``fraction`` of the offers (prices)."""
    touched = max(1, int(len(offers) * fraction))
    timings = []
    for _ in range(rounds):
        for position in rng.choice(len(offers), size=touched, replace=False):
            current = engine.offer(offers[position].id)
            engine.apply(
                OfferUpdated(
                    current.creation_time,
                    replace(current, price_per_kwh=current.price_per_kwh * 1.01 + 0.001),
                )
            )
        started = time.perf_counter()
        engine.commit()
        timings.append(time.perf_counter() - started)
    return statistics.median(timings)


def test_live_incremental_vs_batch_sweep(benchmark, large_offer_scenario):
    """Commit time vs full re-aggregation across touched-offer fractions."""
    offers = large_offer_scenario.flex_offers

    def sweep():
        full = _batch_seconds(offers)
        engine = _seeded_engine(offers)
        rng = np.random.default_rng(7)
        rows = {}
        for fraction in FRACTIONS:
            incremental = _commit_seconds(engine, offers, fraction, rng)
            rows[fraction] = {
                "touched_offers": max(1, int(len(offers) * fraction)),
                "commit_ms": round(incremental * 1000, 3),
                "full_reaggregation_ms": round(full * 1000, 3),
                "speedup": round(full / incremental, 1),
            }
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record(
        benchmark,
        {
            "offer_count": len(offers),
            **{f"touched_{fraction:.0%}": str(values) for fraction, values in rows.items()},
            "claim": "incremental commits beat full re-aggregation as touched fraction shrinks",
        },
        "LIVE: incremental vs batch re-aggregation",
    )
    # Monotonic: the smaller the touched fraction, the larger the speedup.
    speedups = [rows[fraction]["speedup"] for fraction in FRACTIONS]
    assert speedups[0] >= speedups[-1]
    # Headline acceptance: >=5x when 1% of the offers are touched.
    assert speedups[0] >= 5.0


def test_live_replay_throughput(benchmark, paper_scenario):
    """Full lifecycle replay (adds, revisions, transitions, withdrawals)."""

    def run():
        engine = LiveAggregationEngine(micro_batch_size=64)
        log = scenario_event_stream(
            paper_scenario, update_fraction=0.1, withdraw_fraction=0.05, seed=7
        )
        return replay(log, engine)

    report = benchmark.pedantic(run, rounds=3, iterations=1)
    record(
        benchmark,
        {
            "events": report.events,
            "commits": report.commit_count,
            "events_per_second": round(report.events_per_second),
            "mean_commit_ms": round(report.mean_commit_ms, 3),
            "p95_commit_ms": round(report.p95_commit_ms, 3),
            "max_commit_ms": round(report.max_commit_ms, 3),
        },
        "LIVE: event replay throughput",
    )
    assert report.events_per_second > 0


# ----------------------------------------------------------------------
# Standalone smoke mode (CI: `python -m benchmarks.bench_live_engine --quick`)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    """Run the incremental-vs-batch sweep without the pytest harness.

    ``--quick`` shrinks the scenario and the timing rounds so the sweep
    finishes in a few seconds — a functional smoke of the whole live path
    (stream synthesis, engine, commit timing), not a performance gate:
    wall-clock assertions stay in the pytest-benchmark tests.
    """
    import argparse

    from repro.datagen.scenarios import ScenarioConfig, generate_scenario

    parser = argparse.ArgumentParser(description="live engine sweep (standalone)")
    parser.add_argument("--quick", action="store_true", help="small scenario, few rounds")
    parser.add_argument("--prosumers", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=43)
    args = parser.parse_args(argv)
    prosumers = 200 if args.quick else args.prosumers
    rounds = 3 if args.quick else 9

    scenario = generate_scenario(ScenarioConfig(prosumer_count=prosumers, seed=args.seed))
    offers = scenario.flex_offers
    full = _batch_seconds(offers, rounds=rounds)
    engine = _seeded_engine(offers)
    rng = np.random.default_rng(7)
    print(f"[LIVE sweep] {len(offers)} offers, full re-aggregation {full * 1000:.3f} ms")
    for fraction in FRACTIONS:
        incremental = _commit_seconds(engine, offers, fraction, rng, rounds=rounds)
        print(
            f"  touched {fraction:>4.0%}: commit {incremental * 1000:8.3f} ms, "
            f"speedup {full / incremental:6.1f}x"
        )
    report = replay(
        scenario_event_stream(scenario, update_fraction=0.1, withdraw_fraction=0.05, seed=7),
        LiveAggregationEngine(micro_batch_size=64),
    )
    print(
        f"  replay: {report.events} events, {report.commit_count} commits, "
        f"{report.events_per_second:,.0f} events/s"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""LIVE bench: incremental engines beat full re-aggregation — side by side.

The live-family engines re-aggregate only the grid cells touched since the
last commit, so commit cost scales with the touched fraction of the
population while the batch pipeline always pays for everyone.  The sweep
records commit time against a full re-aggregation for touched-offer fractions
of 1%, 5% and 25%, for every incremental engine:

* ``live``    — the single-grid dirty-cell engine (PR 1);
* ``sharded`` — the hash-partitioned engine (independent shard commits);
* ``async``   — the bounded-queue worker over sharded state; its "commit"
  column is the *barrier latency* the caller still pays after ingesting
  (the worker usually committed already — that is the point).

The headline requirement stays: >=5x over full re-aggregation when 1% of the
offers are touched, for the live and the sharded engine.

The standalone mode additionally runs :func:`scaling_sweep` — the columnar
warehouse's scale claim: with a fixed touched set, commit latency (engine +
warehouse mirror) must stay flat while the resident population grows an order
of magnitude (100k → 1M offers; ``--quick`` stops at 100k).

Standalone mode (CI): ``python -m benchmarks.bench_live_engine --quick
--engine all --json BENCH_live.json`` writes the machine-readable summary the
benchmark-trajectory gate (``benchmarks/check_bench_trajectory.py``) consumes.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import replace

import numpy as np
import pytest

from benchmarks.conftest import record
from repro.aggregation.aggregate import aggregate
from repro.aggregation.parameters import AggregationParameters
from repro.flexoffer.model import Direction
from repro.live.asynccommit import AsyncCommitEngine
from repro.live.engine import LiveAggregationEngine
from repro.live.events import OfferAdded, OfferUpdated
from repro.live.replay import replay, scenario_event_stream
from repro.live.sharded import ShardedAggregationEngine

#: Touched-offer fractions the acceptance sweep covers.
FRACTIONS = (0.01, 0.05, 0.25)

#: The incremental engines benchmarked side by side (batch is the baseline).
ENGINES = ("live", "sharded", "async")


def make_engine(name: str, micro_batch_size: int = 0):
    """One fresh incremental engine by CLI/CI name."""
    if name == "live":
        return LiveAggregationEngine(micro_batch_size=micro_batch_size)
    if name == "sharded":
        return ShardedAggregationEngine(micro_batch_size=micro_batch_size)
    if name == "async":
        return AsyncCommitEngine(
            ShardedAggregationEngine(), drain_batch=micro_batch_size or 64
        )
    raise ValueError(f"unknown engine {name!r}; choose from {ENGINES}")


def _seeded_engine(offers, name: str = "live"):
    engine = make_engine(name)
    for offer in offers:
        engine.apply(OfferAdded(offer.creation_time, offer))
    engine.commit()
    return engine


def _batch_seconds(offers, rounds: int = 9) -> float:
    timings = []
    for _ in range(rounds):
        started = time.perf_counter()
        aggregate(offers)
        timings.append(time.perf_counter() - started)
    return statistics.median(timings)


def _commit_seconds(engine, offers, fraction: float, rng, rounds: int = 9) -> float:
    """Median commit time after revising ``fraction`` of the offers (prices)."""
    touched = max(1, int(len(offers) * fraction))
    timings = []
    for _ in range(rounds):
        for position in rng.choice(len(offers), size=touched, replace=False):
            current = engine.offer(offers[position].id)
            engine.apply(
                OfferUpdated(
                    current.creation_time,
                    replace(current, price_per_kwh=current.price_per_kwh * 1.01 + 0.001),
                )
            )
        started = time.perf_counter()
        engine.commit()
        timings.append(time.perf_counter() - started)
    return statistics.median(timings)


def _sweep_engine(name, offers, full_seconds, rounds: int = 9) -> dict:
    """The touched-fraction sweep for one engine; returns the JSON row."""
    return sweep_engines((name,), offers, full_seconds, rounds=rounds)[name]


def sweep_engines(names, offers, full_seconds, rounds: int = 9) -> dict:
    """The touched-fraction sweep, engines *interleaved* round by round.

    Timing the engines back to back folds slow in-process drift (allocator
    growth, clock scaling) into whichever engine runs later; alternating the
    engines within every round spreads that drift evenly, so the medians
    compare engines, not process phases.
    """
    engines = {name: _seeded_engine(offers, name) for name in names}
    rngs = {name: np.random.default_rng(7) for name in names}
    results: dict[str, dict] = {name: {} for name in names}
    for fraction in FRACTIONS:
        touched = max(1, int(len(offers) * fraction))
        timings: dict[str, list[float]] = {name: [] for name in names}
        for _ in range(rounds):
            for name in names:
                engine, rng = engines[name], rngs[name]
                for position in rng.choice(len(offers), size=touched, replace=False):
                    current = engine.offer(offers[position].id)
                    engine.apply(
                        OfferUpdated(
                            current.creation_time,
                            replace(
                                current,
                                price_per_kwh=current.price_per_kwh * 1.01 + 0.001,
                            ),
                        )
                    )
                started = time.perf_counter()
                engine.commit()
                timings[name].append(time.perf_counter() - started)
        for name in names:
            incremental = statistics.median(timings[name])
            results[name][f"{fraction:g}"] = {
                "touched_offers": touched,
                "commit_ms": round(incremental * 1000, 3),
                "speedup_vs_batch": round(full_seconds / incremental, 1),
            }
    for engine in engines.values():
        close = getattr(engine, "close", None)
        if close is not None:
            close()
    return results


def chunked_workload(offers, chunk_size: int = 32, chunks: int = 16, rounds: int = 9) -> dict:
    """The chunk-granularity sweep: commit cost scales with *touched chunks*.

    Builds one grouping-grid cell holding ``chunks`` aggregation chunks of
    ``chunk_size`` offers each (``max_group_size=chunk_size``), then times

    * ``one_chunk_ms``  — a commit after mutating a single offer (1 of
      ``chunks`` chunks dirty; the ledger skips the rest), against
    * ``full_cell_ms`` — a commit after mutating one offer in *every* chunk,
      which is exactly what the pre-ledger engine paid for any single
      mutation (a dirty cell re-aggregated all of its chunks).

    ``speedup`` is their ratio — the headline of ROADMAP live item (c),
    gated ≥3x (and against the committed baseline) in
    ``check_bench_trajectory.py``.
    """
    population = []
    for index in range(chunk_size * chunks):
        base = offers[index % len(offers)]
        population.append(
            replace(
                base,
                id=index + 1,
                earliest_start_slot=40,
                latest_start_slot=48,
                direction=Direction.CONSUMPTION,
                # Scenario offers may carry schedules anchored to their real
                # start window; the forced window would invalidate them.
                schedule=None,
            )
        )
    engine = LiveAggregationEngine(AggregationParameters(max_group_size=chunk_size))
    for offer in population:
        engine.apply(OfferAdded(offer.creation_time, offer))
    engine.commit()

    def mutate(offer_id: int) -> None:
        current = engine.offer(offer_id)
        engine.apply(
            OfferUpdated(
                current.creation_time,
                replace(current, price_per_kwh=current.price_per_kwh * 1.01 + 0.001),
            )
        )

    one_timings, full_timings = [], []
    for round_index in range(rounds):
        # One offer touched -> one dirty chunk of `chunks`.
        mutate(round_index % len(population) + 1)
        started = time.perf_counter()
        result = engine.commit()
        one_timings.append(time.perf_counter() - started)
        assert result.chunks_reaggregated == 1 and result.chunks_skipped == chunks - 1
        # One offer touched per chunk -> every chunk dirty (pre-change cost).
        for chunk_index in range(chunks):
            mutate(chunk_index * chunk_size + round_index % chunk_size + 1)
        started = time.perf_counter()
        result = engine.commit()
        full_timings.append(time.perf_counter() - started)
        assert result.chunks_reaggregated == chunks and result.chunks_skipped == 0
    one = statistics.median(one_timings)
    full = statistics.median(full_timings)
    return {
        "chunks": chunks,
        "chunk_size": chunk_size,
        "one_chunk_ms": round(one * 1000, 3),
        "full_cell_ms": round(full * 1000, 3),
        "speedup": round(full / one, 1),
    }


def test_chunked_commit_granularity(benchmark, large_offer_scenario):
    """Commit cost tracks touched chunks, not cell size (>=3x at 1 of 16)."""
    rows = benchmark.pedantic(
        lambda: chunked_workload(large_offer_scenario.flex_offers), rounds=1, iterations=1
    )
    record(
        benchmark,
        {
            **rows,
            "claim": "chunk-granular commits re-aggregate only perturbed chunks",
        },
        "LIVE: chunk-granular commit vs whole-cell re-aggregation",
    )
    assert rows["speedup"] >= 3.0


def scaling_sweep(offers, rungs, touched: int = 256, rounds: int = 5) -> dict:
    """Commit latency against warehouse population — the scale claim.

    For every rung the population is grown to ``size`` offers (replicas of the
    scenario offers under fresh ids), streamed into a fresh live engine with a
    mirrored :class:`~repro.live.warehouse.LiveWarehouse`, and then exactly
    ``touched`` offers are revised per commit.  The engine runs with a
    *bounded* aggregate group size (the paper's ``max_group_size``): with
    unbounded groups one aggregate output covers its entire grid cell, so a
    single touched offer re-aggregates O(cell) members by definition and no
    incremental engine can be flat.  Bounded, the chunk-granular dirty ledger
    pays ``dirty_chunks * max_group_size`` per commit and the columnar
    warehouse updates rows by hash index, so the timed commit (engine +
    warehouse mirror) must stay *flat* as the resident population grows —
    that is the claim the trajectory gate holds: ``latency_ratio`` (largest
    over smallest rung) stays under an absolute ceiling.
    """
    from repro.live.warehouse import LiveWarehouse
    from repro.timeseries.grid import TimeGrid
    from repro.warehouse.schema import StarSchema

    parameters = AggregationParameters(max_group_size=64)
    rows = []
    for size in rungs:
        population = []
        for index in range(size):
            base = offers[index % len(offers)]
            population.append(replace(base, id=index + 1, schedule=None))
        engine = LiveAggregationEngine(parameters)
        warehouse = LiveWarehouse(StarSchema.empty(), TimeGrid(), parameters)
        seed_started = time.perf_counter()
        for offer in population:
            event = OfferAdded(offer.creation_time, offer)
            engine.apply(event)
            warehouse.apply(event)
        result = engine.commit()
        warehouse.apply_commit(result)
        seed_seconds = time.perf_counter() - seed_started
        rng = np.random.default_rng(23)
        timings = []
        for _ in range(rounds):
            events = []
            for position in rng.choice(size, size=min(touched, size), replace=False):
                current = engine.offer(int(position) + 1)
                events.append(
                    OfferUpdated(
                        current.creation_time,
                        replace(current, price_per_kwh=current.price_per_kwh * 1.01 + 0.001),
                    )
                )
            started = time.perf_counter()
            for event in events:
                engine.apply(event)
                warehouse.apply(event)
            commit = engine.commit()
            warehouse.apply_commit(commit)
            timings.append(time.perf_counter() - started)
        rows.append(
            {
                "population": size,
                "touched_offers": min(touched, size),
                "seed_seconds": round(seed_seconds, 3),
                "commit_ms": round(statistics.median(timings) * 1000, 3),
                "fact_rows": len(warehouse.schema.table("fact_flexoffer")),
            }
        )
    smallest, largest = rows[0], rows[-1]
    return {
        "rungs": rows,
        "touched": touched,
        # Flatness: commit latency at the largest rung over the smallest.
        "latency_ratio": round(largest["commit_ms"] / smallest["commit_ms"], 2),
        "population_ratio": round(largest["population"] / smallest["population"], 1),
    }


def obs_overhead(offers, rounds: int = 15, fraction: float = 0.05) -> dict:
    """Observability cost on the commit path — off, fully on, and sampled.

    Three identical live engines run the same revise-and-commit workload,
    rounds interleaved so process drift lands on all equally: one commits
    with :mod:`repro.obs` disabled, one fully enabled, one enabled under a
    head-based 1-in-16 :class:`~repro.obs.Sampler` (the production
    "always-on" posture: metrics stay exact, only traces are thinned).  The
    JSON row carries two same-process, machine-independent ratios the
    trajectory gate holds above absolute floors: ``throughput_ratio =
    disabled_ms / enabled_ms`` (>= 90%) and ``sampled_ratio = disabled_ms /
    sampled_ms`` (>= 95% — sampling must recover most of the tracing cost).
    """
    from repro import obs

    modes = ("disabled", "enabled", "sampled")
    engines = {mode: _seeded_engine(offers) for mode in modes}
    rngs = {mode: np.random.default_rng(11) for mode in modes}
    touched = max(1, int(len(offers) * fraction))
    timings: dict[str, list[float]] = {mode: [] for mode in modes}
    obs.reset()
    try:
        for _ in range(rounds):
            for mode in modes:
                engine, rng = engines[mode], rngs[mode]
                for position in rng.choice(len(offers), size=touched, replace=False):
                    current = engine.offer(offers[position].id)
                    engine.apply(
                        OfferUpdated(
                            current.creation_time,
                            replace(
                                current,
                                price_per_kwh=current.price_per_kwh * 1.01 + 0.001,
                            ),
                        )
                    )
                if mode == "enabled":
                    obs.enable()
                elif mode == "sampled":
                    obs.enable()
                    obs.set_sampler(obs.Sampler(default_rate=16))
                started = time.perf_counter()
                engine.commit()
                timings[mode].append(time.perf_counter() - started)
                obs.set_sampler(None)
                obs.disable()
    finally:
        obs.disable()
        obs.reset()
    disabled = statistics.median(timings["disabled"])
    enabled = statistics.median(timings["enabled"])
    sampled = statistics.median(timings["sampled"])
    return {
        "touched_offers": touched,
        "rounds": rounds,
        "disabled_commit_ms": round(disabled * 1000, 3),
        "enabled_commit_ms": round(enabled * 1000, 3),
        "sampled_commit_ms": round(sampled * 1000, 3),
        "throughput_ratio": round(disabled / enabled, 3),
        "sampled_ratio": round(disabled / sampled, 3),
    }


def materialized_refresh(scenario, rounds: int = 9, fraction: float = 0.02) -> dict:
    """Delta-maintained view update vs a full recompute of the same spec.

    A standing aggregated :class:`~repro.session.materialize.MaterializedView`
    rides a revise-and-commit workload: each round touches ``fraction`` of
    the raw offers and commits once.  The per-commit maintenance cost comes
    from the view's own ``maintenance_seconds`` clock (only the delta
    application, not the engine commit around it); the comparator is a timed
    ``view.refresh()`` — the from-scratch rebuild every dashboard redraw paid
    before materialized views existed.  ``speedup`` is a same-process,
    machine-independent ratio the trajectory gate holds above an absolute
    floor (>= 3x, the ISSUE acceptance criterion).
    """
    from repro.session import FlexSession, QuerySpec

    with FlexSession(scenario, engine="live") as session:
        view = session.materialize(
            QuerySpec.build(parameters=session.parameters), name="bench"
        )
        population = {
            offer.id: offer
            for offer in session.engine.offers()
            if not offer.is_aggregate
        }
        ids = sorted(population)
        touched = max(1, int(len(ids) * fraction))
        rng = np.random.default_rng(17)
        apply_timings: list[float] = []
        for _ in range(rounds):
            for position in rng.choice(len(ids), size=touched, replace=False):
                current = population[ids[position]]
                revised = replace(
                    current, price_per_kwh=current.price_per_kwh * 1.01 + 0.001
                )
                population[revised.id] = revised
                session.ingest(OfferUpdated(current.creation_time, revised))
            before = view.maintenance_seconds
            session.commit()
            apply_timings.append(view.maintenance_seconds - before)
        refresh_timings: list[float] = []
        for _ in range(rounds):
            started = time.perf_counter()
            view.refresh()
            refresh_timings.append(time.perf_counter() - started)
        deltas_applied = view.deltas_applied
    delta_apply = statistics.median(apply_timings)
    full_refresh = statistics.median(refresh_timings)
    return {
        "rounds": rounds,
        "touched_offers": touched,
        "offer_count": len(ids),
        "deltas_applied": deltas_applied,
        "delta_apply_ms": round(delta_apply * 1000, 4),
        "full_refresh_ms": round(full_refresh * 1000, 4),
        "speedup": round(full_refresh / delta_apply, 1) if delta_apply else 0.0,
    }


def query_storm(
    scenario,
    readers: int = 4,
    reads_per_reader: int = 250,
    writer_passes: int = 3,
    rounds: int = 9,
) -> dict:
    """The versioned-read-path storm: a reader pool racing a confined writer.

    An async session preloads the scenario; the writer thread then revises
    only the offers of a single *hot* region while ``readers`` threads hammer
    ``consistency="latest"`` queries whose specs cover the *cold* regions —
    exactly the workload the spec-keyed cache exists for, since commits only
    dirty hot-region cells and the cold entries are carried across versions.

    The JSON row carries three machine-independent ratios the trajectory gate
    consumes:

    * ``cache_speedup``   — uncached vs cached latency of the same untouched
      aggregation spec (the cache is rebased before every uncached probe);
      gated against the absolute ``CACHE_SPEEDUP_FLOOR`` (5x);
    * ``hit_ratio``       — cache hits over lookups *during the storm only*
      (counter deltas), gated against the absolute ``STORM_HIT_FLOOR``;
    * ``throughput_vs_recompute`` — reads the pool served per uncached
      recomputation time, gated against the absolute
      ``STORM_THROUGHPUT_FLOOR`` (the pool must beat recomputation even
      while a writer commits underneath it).  The raw qps figures and the
      per-thread ``parallel_efficiency`` are reported but not gated —
      thread-scheduling jitter swamps them at quick-sweep scale.
    """
    import threading

    from repro.session import FlexSession
    from repro.session.spec import QuerySpec

    session = FlexSession(scenario, engine="async")
    try:
        backend = session.engine
        backend.refresh()  # drain the preload; the baseline snapshot exists
        cache = backend.readpath.cache
        regions = sorted({offer.region for offer in scenario.offers_in_arrival_order()})
        hot_region = regions[0]
        cold_regions = tuple(regions[1:]) or (hot_region,)
        specs = [QuerySpec.build(region=region) for region in cold_regions]
        specs.append(QuerySpec.build(regions=cold_regions, parameters=session.parameters))
        hot_offers = [
            offer
            for offer in scenario.offers_in_arrival_order()
            if offer.region == hot_region
        ]

        # Cached vs uncached latency on one untouched aggregation spec.  The
        # uncached probe rebases the cache (same version) so every read pays
        # the full snapshot select + aggregation; the cached probe repeats a
        # warm read.  Same spec, same snapshot, same process — the ratio is
        # machine-independent.
        agg_spec = QuerySpec.build(regions=cold_regions, parameters=session.parameters)
        uncached_timings = []
        for _ in range(rounds):
            cache.rebase(cache.version)
            started = time.perf_counter()
            session.query(agg_spec, consistency="latest")
            uncached_timings.append(time.perf_counter() - started)
        session.query(agg_spec, consistency="latest")  # warm the entry
        cached_timings = []
        for _ in range(rounds):
            started = time.perf_counter()
            for _ in range(50):
                session.query(agg_spec, consistency="latest")
            cached_timings.append((time.perf_counter() - started) / 50)
        uncached = statistics.median(uncached_timings)
        cached = statistics.median(cached_timings)

        # Single-reader baseline: one thread, warm cache, quiescent writer.
        for spec in specs:
            session.query(spec, consistency="latest")
        single_reads = len(specs) * 40
        started = time.perf_counter()
        for index in range(single_reads):
            session.query(specs[index % len(specs)], consistency="latest")
        single_qps = single_reads / (time.perf_counter() - started)

        # The storm: the writer revises hot-region prices (the async worker
        # commits and publishes behind it) while the reader pool runs.
        before = cache.stats()
        version_before = backend.readpath.manager.latest_version
        failures: list[BaseException] = []

        def writer() -> None:
            try:
                for sweep in range(writer_passes):
                    for offer in hot_offers:
                        session.ingest(
                            OfferUpdated(
                                offer.creation_time,
                                replace(
                                    offer,
                                    price_per_kwh=offer.price_per_kwh
                                    * (1.0 + 0.01 * (sweep + 1))
                                    + 0.001,
                                ),
                            )
                        )
            except BaseException as exc:  # pragma: no cover - surfaced below
                failures.append(exc)

        reader_finishes: list[float] = []

        def reader() -> None:
            try:
                for index in range(reads_per_reader):
                    session.query(specs[index % len(specs)], consistency="latest")
                reader_finishes.append(time.perf_counter())
            except BaseException as exc:  # pragma: no cover - surfaced below
                failures.append(exc)

        threads = [threading.Thread(target=writer, name="storm-writer")]
        threads.extend(
            threading.Thread(target=reader, name=f"storm-reader-{index}")
            for index in range(readers)
        )
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if failures:
            raise failures[0]
        # Reader throughput stops at the *last reader's* finish — the writer
        # keeps running (and keeps the race honest) but must not count
        # against the readers' wall clock.
        elapsed = max(reader_finishes) - started
        backend.refresh()
        after = cache.stats()
        lookups = (after["hits"] + after["misses"]) - (before["hits"] + before["misses"])
        hit_ratio = (after["hits"] - before["hits"]) / lookups if lookups else 0.0
        storm_qps = readers * reads_per_reader / elapsed
        return {
            "readers": readers,
            "reads": readers * reads_per_reader,
            "hot_region": hot_region,
            "cold_specs": len(specs),
            "commits_during_storm": backend.readpath.manager.latest_version
            - version_before,
            "uncached_read_ms": round(uncached * 1000, 4),
            "cached_read_ms": round(cached * 1000, 4),
            "cache_speedup": round(uncached / cached, 1),
            "hit_ratio": round(hit_ratio, 3),
            "single_qps": round(single_qps, 1),
            "storm_qps": round(storm_qps, 1),
            "parallel_efficiency": round(storm_qps / readers / single_qps, 3),
            # Reads the pool served in the time ONE uncached recomputation
            # takes — the cache's payoff under concurrency, and the only
            # storm ratio stable enough to gate (thread-scheduling jitter
            # dominates the qps figures at quick-sweep scale).
            "throughput_vs_recompute": round(storm_qps * uncached, 1),
        }
    finally:
        session.close()


def test_query_storm(benchmark, paper_scenario):
    """Readers racing a region-confined writer stay cache-served and atomic."""
    rows = benchmark.pedantic(
        lambda: query_storm(paper_scenario, reads_per_reader=150, rounds=5),
        rounds=1,
        iterations=1,
    )
    record(
        benchmark,
        {**rows, "claim": "untouched-spec reads survive commits as cache hits"},
        "LIVE: concurrent query storm over the versioned read path",
    )
    assert rows["cache_speedup"] >= 5.0
    assert rows["hit_ratio"] >= 0.5
    assert rows["throughput_vs_recompute"] >= 5.0


def stage_breakdown(scenario, engine_name: str = "live") -> dict:
    """Per-stage latency rows from one instrumented replay-and-query pass.

    Goes through a :class:`FlexSession` (not a bare engine) so the commit,
    kernel *and* query stages all record — the trajectory gate requires all
    three to stay present in the ``--json`` summary.
    """
    from benchmarks.conftest import stage_rows
    from repro import obs
    from repro.session import FlexSession

    obs.reset()
    obs.enable()
    try:
        session = FlexSession(
            scenario, engine=engine_name, micro_batch_size=64, live_preload=False
        )
        log = scenario_event_stream(
            scenario, update_fraction=0.1, withdraw_fraction=0.05, seed=7
        )
        session.replay(log.replay_order())
        session.offers().where(state="assigned").fetch()
        session.offers().aggregate().fetch()
        session.close()
    finally:
        obs.disable()
    rows = stage_rows(obs.get_registry())
    obs.reset()
    return rows


def _replay_report(name, scenario, micro_batch_size: int = 64):
    engine = make_engine(name, micro_batch_size=micro_batch_size)
    log = scenario_event_stream(
        scenario, update_fraction=0.1, withdraw_fraction=0.05, seed=7
    )
    report = replay(log, engine)
    close = getattr(engine, "close", None)
    if close is not None:
        close()
    return report


@pytest.mark.parametrize("engine_name", ("live", "sharded"))
def test_incremental_vs_batch_sweep(benchmark, large_offer_scenario, engine_name):
    """Commit time vs full re-aggregation across touched-offer fractions."""
    offers = large_offer_scenario.flex_offers

    def sweep():
        full = _batch_seconds(offers)
        rows = _sweep_engine(engine_name, offers, full)
        for values in rows.values():
            values["full_reaggregation_ms"] = round(full * 1000, 3)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record(
        benchmark,
        {
            "engine": engine_name,
            "offer_count": len(offers),
            **{f"touched_{key}": str(values) for key, values in rows.items()},
            "claim": "incremental commits beat full re-aggregation as touched fraction shrinks",
        },
        f"LIVE: {engine_name} vs batch re-aggregation",
    )
    # Monotonic: the smaller the touched fraction, the larger the speedup.
    speedups = [rows[f"{fraction:g}"]["speedup_vs_batch"] for fraction in FRACTIONS]
    assert speedups[0] >= speedups[-1]
    # Headline acceptance: >=5x when 1% of the offers are touched.
    assert speedups[0] >= 5.0


@pytest.mark.parametrize("engine_name", ENGINES)
def test_replay_throughput(benchmark, paper_scenario, engine_name):
    """Full lifecycle replay (adds, revisions, transitions, withdrawals)."""
    report = benchmark.pedantic(
        lambda: _replay_report(engine_name, paper_scenario), rounds=3, iterations=1
    )
    record(
        benchmark,
        {
            "engine": engine_name,
            "events": report.events,
            "commits": report.commit_count,
            "events_per_second": round(report.events_per_second),
            "mean_commit_ms": round(report.mean_commit_ms, 3),
            "p95_commit_ms": round(report.p95_commit_ms, 3),
            "max_commit_ms": round(report.max_commit_ms, 3),
        },
        f"LIVE: {engine_name} event replay throughput",
    )
    assert report.events_per_second > 0


# ----------------------------------------------------------------------
# Standalone smoke mode (CI: `python -m benchmarks.bench_live_engine --quick`)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    """Run the incremental-vs-batch sweep without the pytest harness.

    ``--quick`` shrinks the scenario and the timing rounds so the sweep
    finishes in a few seconds — a functional smoke of the whole live path
    (stream synthesis, engines, commit timing).  Wall-clock assertions stay
    in the pytest-benchmark tests; CI gates only on the *relative ratios*
    inside the ``--json`` summary (see ``check_bench_trajectory.py``).
    """
    import argparse
    import json

    from repro.datagen.scenarios import ScenarioConfig, generate_scenario

    parser = argparse.ArgumentParser(description="live engine sweep (standalone)")
    parser.add_argument("--quick", action="store_true", help="small scenario, few rounds")
    parser.add_argument("--prosumers", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=43)
    parser.add_argument(
        "--engine",
        choices=(*ENGINES, "all"),
        default="all",
        help="which incremental engine(s) to sweep (default: all, side by side)",
    )
    parser.add_argument(
        "--json", metavar="PATH", help="write the machine-readable summary to PATH"
    )
    args = parser.parse_args(argv)
    prosumers = 200 if args.quick else args.prosumers
    # The quick scenario's commits are tiny (a few dirty cells), so medians
    # need more rounds to be stable enough for the CI trajectory gate.
    rounds = 15 if args.quick else 9
    names = ENGINES if args.engine == "all" else (args.engine,)

    scenario = generate_scenario(ScenarioConfig(prosumer_count=prosumers, seed=args.seed))
    offers = scenario.flex_offers
    full = _batch_seconds(offers, rounds=rounds)
    summary = {
        "schema": 1,
        "quick": bool(args.quick),
        "offer_count": len(offers),
        "full_reaggregation_ms": round(full * 1000, 3),
        "engines": {},
    }
    print(f"[LIVE sweep] {len(offers)} offers, full re-aggregation {full * 1000:.3f} ms")
    sweeps = sweep_engines(names, offers, full, rounds=rounds)
    for name in names:
        fractions = sweeps[name]
        for key, values in fractions.items():
            label = float(key)
            print(
                f"  {name:>7} touched {label:>4.0%}: commit {values['commit_ms']:8.3f} ms, "
                f"speedup {values['speedup_vs_batch']:6.1f}x"
            )
        report = _replay_report(name, scenario)
        print(
            f"  {name:>7} replay: {report.events} events, {report.commit_count} commits, "
            f"{report.events_per_second:,.0f} events/s"
        )
        summary["engines"][name] = {
            "sweep": fractions,
            "replay": {
                "events": report.events,
                "commits": report.commit_count,
                "events_per_second": round(report.events_per_second, 1),
                "mean_commit_ms": round(report.mean_commit_ms, 3),
                "p95_commit_ms": round(report.p95_commit_ms, 3),
            },
        }
    # The chunk-granularity workload: one touched chunk of 16 vs the whole
    # cell (what any single mutation cost before the chunk ledger).
    chunk_size = 16 if args.quick else 32
    chunked = chunked_workload(offers, chunk_size=chunk_size, rounds=rounds)
    summary["chunked"] = chunked
    print(
        f"  chunked workload: 1 of {chunked['chunks']} chunks {chunked['one_chunk_ms']:.3f} ms, "
        f"full cell {chunked['full_cell_ms']:.3f} ms, speedup {chunked['speedup']:.1f}x"
    )
    # The scale claim: fixed-touched-set commit latency stays flat while the
    # resident population (and the columnar warehouse behind it) grows 10x.
    scaling_rungs = (10_000, 100_000) if args.quick else (100_000, 1_000_000)
    scaling = scaling_sweep(offers, scaling_rungs, rounds=5 if args.quick else 9)
    summary["scaling"] = scaling
    for rung in scaling["rungs"]:
        print(
            f"  scaling {rung['population']:>9,} offers: commit {rung['commit_ms']:8.3f} ms "
            f"({rung['touched_offers']} touched, {rung['fact_rows']:,} fact rows, "
            f"seeded in {rung['seed_seconds']:.1f} s)"
        )
    print(
        f"  scaling flatness: {scaling['population_ratio']:.0f}x population -> "
        f"{scaling['latency_ratio']:.2f}x commit latency"
    )
    # Observability overhead: enabled commits must stay within 10% of disabled.
    overhead = obs_overhead(offers, rounds=rounds)
    summary["obs"] = overhead
    print(
        f"  obs overhead: disabled {overhead['disabled_commit_ms']:.3f} ms, "
        f"enabled {overhead['enabled_commit_ms']:.3f} ms, "
        f"sampled {overhead['sampled_commit_ms']:.3f} ms, "
        f"ratios enabled {overhead['throughput_ratio']:.3f} / "
        f"sampled {overhead['sampled_ratio']:.3f}"
    )
    # Materialized views: per-commit delta maintenance vs a from-scratch
    # refresh of the same standing spec (the PR 10 acceptance criterion).
    materialized = materialized_refresh(scenario, rounds=rounds)
    summary["materialized"] = materialized
    print(
        f"  materialized view: delta apply {materialized['delta_apply_ms']:.4f} ms vs "
        f"full refresh {materialized['full_refresh_ms']:.4f} ms "
        f"({materialized['speedup']:.1f}x, {materialized['touched_offers']} touched "
        f"of {materialized['offer_count']})"
    )
    # The versioned-read-path storm: cached reads vs recomputation, reader
    # scaling, and the cache hit ratio under a region-confined writer.
    storm = query_storm(scenario, reads_per_reader=150 if args.quick else 250, rounds=rounds)
    summary["storm"] = storm
    print(
        f"  query storm: cached {storm['cached_read_ms']:.4f} ms vs uncached "
        f"{storm['uncached_read_ms']:.4f} ms ({storm['cache_speedup']:.1f}x), "
        f"hit ratio {storm['hit_ratio']:.3f}, "
        f"{storm['storm_qps']:,.0f} reads/s over {storm['readers']} readers "
        f"({storm['throughput_vs_recompute']:.0f}x the recompute rate, "
        f"{storm['commits_during_storm']} commits mid-storm)"
    )
    # Per-stage latency breakdown from one instrumented replay, plus each
    # stage's share of the total — the shape the drift gate holds in a band.
    from benchmarks.conftest import stage_shares

    stages = stage_breakdown(scenario)
    summary["stages"] = stages
    summary["stage_shares"] = stage_shares(stages)
    for stage, row in sorted(stages.items()):
        print(
            f"  stage {stage:<42} n={row['count']:<5} mean {row['mean_ms']:8.4f} ms "
            f"p95 {row['p95_ms']:8.4f} ms"
        )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""CLAIM-1 / CLAIM-2 bench: scalability of the basic view vs the profile view.

The paper states that the basic view is "used to show a large numbers of
flex-offers" while the profile view "is effective for a smaller flex-offer set
with less than few thousands of flex-offers".  The bench sweeps the on-screen
offer count and times both views, so the report shows the crossover: the
basic view stays cheap (few scene nodes per offer) while the profile view's
cost grows with the number of profile slices.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record
from repro.datagen.scenarios import scenario_with_offer_count
from repro.views.basic import BasicView
from repro.views.profile_view import ProfileView

#: On-screen flex-offer counts swept by the claim benchmarks.
SWEEP = (100, 500, 1000, 2000)

_CACHE: dict[int, object] = {}


def _scenario(target: int):
    if target not in _CACHE:
        _CACHE[target] = scenario_with_offer_count(target, seed=13)
    return _CACHE[target]


@pytest.mark.parametrize("target", SWEEP)
def test_claim1_basic_view_scales(benchmark, target):
    """CLAIM-1: the basic view handles large flex-offer sets."""
    scenario = _scenario(target)
    offers = scenario.flex_offers

    def build():
        view = BasicView(offers, scenario.grid)
        return view, view.to_svg()

    view, svg = benchmark.pedantic(build, rounds=3, iterations=1)
    nodes = view.scene().count_nodes()
    record(
        benchmark,
        {
            "offer_count": len(offers),
            "scene_nodes": nodes,
            "nodes_per_offer": round(nodes / max(len(offers), 1), 1),
            "svg_kib": round(len(svg) / 1024, 1),
        },
        f"CLAIM-1: basic view @ {len(offers)} offers",
    )
    assert nodes / max(len(offers), 1) < 6  # a handful of marks per offer


@pytest.mark.parametrize("target", SWEEP)
def test_claim2_profile_view_density(benchmark, target):
    """CLAIM-2: the profile view is effective only below a few thousand offers."""
    scenario = _scenario(target)
    offers = scenario.flex_offers

    def build():
        view = ProfileView(offers, scenario.grid)
        return view, view.to_svg()

    view, svg = benchmark.pedantic(build, rounds=1, iterations=1)
    nodes = view.scene().count_nodes()
    record(
        benchmark,
        {
            "offer_count": len(offers),
            "scene_nodes": nodes,
            "nodes_per_offer": round(nodes / max(len(offers), 1), 1),
            "svg_kib": round(len(svg) / 1024, 1),
        },
        f"CLAIM-2: profile view @ {len(offers)} offers",
    )
    # The profile view is strictly denser than the basic view — the structural
    # reason the paper limits it to smaller sets.
    basic_nodes = BasicView(offers, scenario.grid).scene().count_nodes()
    assert nodes > basic_nodes
